module Crc32 = Ifp_util.Crc32

(* v3: the result payload is CRC32-framed (header carries length +
   checksum), so torn writes and bit rot are detected deterministically
   instead of relying on [Marshal] raising on garbage. v2 entries (and
   v1 before them) live in their own version directory and are simply
   never read by a v3 binary. *)
let format_version = 3

type stats = {
  entries : int;
  bytes : int;
  max_bytes : int option;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  evicted_bytes : int;
}

type t = {
  root : string;
  max_bytes : int option;
  (* size accounting + counters; mutated from every engine worker domain
     (and the daemon's shard workers), hence atomics. [bytes]/[entries]
     are a best-effort running tally re-grounded by each sweep's
     directory walk, so a concurrent process evicting the same directory
     skews them only until the next sweep. *)
  bytes : int Atomic.t;
  entries : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores_n : int Atomic.t;
  evictions : int Atomic.t;
  evicted_bytes : int Atomic.t;
  (* the per-instance lock the daemon's shards rely on: at most one
     domain walks/evicts this cache directory at a time *)
  sweep_lock : Mutex.t;
}

(* header stored alongside the result so [find] can reject entries whose
   file name lies about the content (truncated copy, digest collision)
   before paying for the payload, and verify the payload it does read *)
type entry_header = {
  h_magic : string;
  h_digest : string;
  h_job : string;
  h_len : int;  (** payload byte length *)
  h_crc : int32;  (** CRC-32 of the payload bytes *)
}

let magic = "ifp-campaign-cache"

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else (
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ())

let dir t = t.root

let version_dir t =
  Filename.concat t.root (Printf.sprintf "v%d" format_version)

let path_of t digest =
  let fanout =
    if String.length digest >= 2 then String.sub digest 0 2 else "xx"
  in
  Filename.concat
    (Filename.concat (version_dir t) fanout)
    (digest ^ ".result")

let is_entry name = Filename.check_suffix name ".result"

(* every live entry under the version dir as (path, mtime, size) *)
let scan_entries t =
  let vdir = version_dir t in
  match Sys.readdir vdir with
  | exception Sys_error _ -> []
  | fanouts ->
    Array.fold_left
      (fun acc fanout ->
        let fdir = Filename.concat vdir fanout in
        match Sys.readdir fdir with
        | exception Sys_error _ -> acc
        | files ->
          Array.fold_left
            (fun acc f ->
              if not (is_entry f) then acc
              else
                let path = Filename.concat fdir f in
                match Unix.stat path with
                | exception Unix.Unix_error _ -> acc
                | st -> (path, st.Unix.st_mtime, st.Unix.st_size) :: acc)
            acc files)
      [] fanouts

let create ?max_bytes ~dir () =
  let t =
    {
      root = dir;
      max_bytes;
      bytes = Atomic.make 0;
      entries = Atomic.make 0;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      stores_n = Atomic.make 0;
      evictions = Atomic.make 0;
      evicted_bytes = Atomic.make 0;
      sweep_lock = Mutex.create ();
    }
  in
  (* ground the size tally in whatever a previous run left behind *)
  List.iter
    (fun (_, _, size) ->
      Atomic.set t.bytes (Atomic.get t.bytes + size);
      Atomic.set t.entries (Atomic.get t.entries + 1))
    (scan_entries t);
  t

let stats t =
  {
    entries = Atomic.get t.entries;
    bytes = Atomic.get t.bytes;
    max_bytes = t.max_bytes;
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    stores = Atomic.get t.stores_n;
    evictions = Atomic.get t.evictions;
    evicted_bytes = Atomic.get t.evicted_bytes;
  }

let stats_json t =
  let s = stats t in
  let total = s.hits + s.misses in
  Events.Obj
    [
      ("entries", Events.Int s.entries);
      ("bytes", Events.Int s.bytes);
      ( "max_bytes",
        match s.max_bytes with Some b -> Events.Int b | None -> Events.Null );
      ("hits", Events.Int s.hits);
      ("misses", Events.Int s.misses);
      ("stores", Events.Int s.stores);
      ("evictions", Events.Int s.evictions);
      ("evicted_bytes", Events.Int s.evicted_bytes);
      ( "hit_rate",
        if total = 0 then Events.Null
        else Events.Float (float_of_int s.hits /. float_of_int total) );
    ]

(* LRU sweep: oldest-mtime entries go first until the directory fits the
   budget again. The walk re-grounds the running tally, so drift from
   concurrent writers (another campaign sharing the cache dir) heals
   here. Entries that vanish mid-sweep (a concurrent eviction) are
   skipped, not errors. *)
let sweep t =
  match t.max_bytes with
  | None -> ()
  | Some budget ->
    if Atomic.get t.bytes > budget then begin
      Mutex.lock t.sweep_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.sweep_lock)
        (fun () ->
          let entries = scan_entries t in
          let total =
            List.fold_left (fun acc (_, _, size) -> acc + size) 0 entries
          in
          Atomic.set t.bytes total;
          Atomic.set t.entries (List.length entries);
          if total > budget then begin
            let by_age =
              List.sort
                (fun (_, m1, _) (_, m2, _) -> compare (m1 : float) m2)
                entries
            in
            let over = ref (total - budget) in
            List.iter
              (fun (path, _, size) ->
                if !over > 0 then
                  match Sys.remove path with
                  | () ->
                    over := !over - size;
                    Atomic.set t.bytes (Atomic.get t.bytes - size);
                    Atomic.set t.entries (Atomic.get t.entries - 1);
                    Atomic.incr t.evictions;
                    Atomic.set t.evicted_bytes
                      (Atomic.get t.evicted_bytes + size)
                  | exception Sys_error _ -> ())
              by_age
          end)
    end

type lookup =
  | Hit of Ifp_vm.Vm.result
  | Miss
  | Quarantined of { path : string; reason : string; crc_mismatch : bool }

let quarantine_path path = Filename.remove_extension path ^ ".corrupt"

let read_exact ic n =
  let buf = Bytes.create n in
  match really_input ic buf 0 n with
  | () -> Some (Bytes.unsafe_to_string buf)
  | exception End_of_file -> None

let find t ~digest =
  let path = path_of t digest in
  match open_in_bin path with
  | exception Sys_error _ ->
    Atomic.incr t.misses;
    Miss
  | ic ->
    let verdict =
      try
        let header : entry_header = Marshal.from_channel ic in
        if header.h_magic <> magic then Error ("bad magic", false)
        else if header.h_digest <> digest then Error ("digest mismatch", false)
        else if header.h_len < 0 then Error ("negative payload length", false)
        else
          match read_exact ic header.h_len with
          | None -> Error ("truncated payload", true)
          | Some payload ->
            if Crc32.string payload <> header.h_crc then
              Error ("payload crc mismatch", true)
            else (
              match (Marshal.from_string payload 0 : Ifp_vm.Vm.result) with
              | result -> Ok result
              | exception _ ->
                (* crc verified but the shape didn't decode: a
                   same-version serialisation bug, not a torn write *)
                Error ("undecodable payload", false))
      with _ -> Error ("truncated or undecodable header", false)
    in
    close_in_noerr ic;
    (match verdict with
    | Ok result ->
      Atomic.incr t.hits;
      (* LRU touch: a hit refreshes the entry's mtime so the byte-budget
         sweep evicts cold entries first *)
      (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
      Hit result
    | Error (reason, crc_mismatch) ->
      Atomic.incr t.misses;
      (* move the damaged file aside so the next run re-misses cleanly
         instead of re-tripping on it forever; keep it for post-mortem *)
      let qpath = quarantine_path path in
      (match Unix.stat path with
      | st ->
        Atomic.set t.bytes (Atomic.get t.bytes - st.Unix.st_size);
        Atomic.set t.entries (Atomic.get t.entries - 1)
      | exception Unix.Unix_error _ -> ());
      (try Sys.rename path qpath
       with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
      Quarantined { path = qpath; reason; crc_mismatch })

let store t ~digest ~job_name result =
  let path = path_of t digest in
  try
    mkdir_p (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Domain.self () :> int)
    in
    let payload = Marshal.to_string result [] in
    let oc = open_out_bin tmp in
    Marshal.to_channel oc
      { h_magic = magic; h_digest = digest; h_job = job_name;
        h_len = String.length payload; h_crc = Crc32.string payload }
      [];
    output_string oc payload;
    close_out oc;
    (* replacing an entry must not double-count its bytes *)
    let replaced =
      match Unix.stat path with
      | st -> Some st.Unix.st_size
      | exception Unix.Unix_error _ -> None
    in
    let size =
      match Unix.stat tmp with
      | st -> st.Unix.st_size
      | exception Unix.Unix_error _ -> 0
    in
    Sys.rename tmp path;
    Atomic.incr t.stores_n;
    (match replaced with
    | Some old -> Atomic.set t.bytes (Atomic.get t.bytes - old)
    | None -> Atomic.set t.entries (Atomic.get t.entries + 1));
    Atomic.set t.bytes (Atomic.get t.bytes + size);
    sweep t
  with Sys_error _ | Unix.Unix_error _ -> ()
