module Crc32 = Ifp_util.Crc32

type t = { root : string }

(* v3: the result payload is CRC32-framed (header carries length +
   checksum), so torn writes and bit rot are detected deterministically
   instead of relying on [Marshal] raising on garbage. v2 entries (and
   v1 before them) live in their own version directory and are simply
   never read by a v3 binary. *)
let format_version = 3

(* header stored alongside the result so [find] can reject entries whose
   file name lies about the content (truncated copy, digest collision)
   before paying for the payload, and verify the payload it does read *)
type entry_header = {
  h_magic : string;
  h_digest : string;
  h_job : string;
  h_len : int;  (** payload byte length *)
  h_crc : int32;  (** CRC-32 of the payload bytes *)
}

let magic = "ifp-campaign-cache"

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else (
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ())

let create ~dir = { root = dir }

let dir t = t.root

let version_dir t =
  Filename.concat t.root (Printf.sprintf "v%d" format_version)

let path_of t digest =
  let fanout =
    if String.length digest >= 2 then String.sub digest 0 2 else "xx"
  in
  Filename.concat
    (Filename.concat (version_dir t) fanout)
    (digest ^ ".result")

type lookup =
  | Hit of Ifp_vm.Vm.result
  | Miss
  | Quarantined of { path : string; reason : string; crc_mismatch : bool }

let quarantine_path path = Filename.remove_extension path ^ ".corrupt"

let read_exact ic n =
  let buf = Bytes.create n in
  match really_input ic buf 0 n with
  | () -> Some (Bytes.unsafe_to_string buf)
  | exception End_of_file -> None

let find t ~digest =
  let path = path_of t digest in
  match open_in_bin path with
  | exception Sys_error _ -> Miss
  | ic ->
    let verdict =
      try
        let header : entry_header = Marshal.from_channel ic in
        if header.h_magic <> magic then Error ("bad magic", false)
        else if header.h_digest <> digest then Error ("digest mismatch", false)
        else if header.h_len < 0 then Error ("negative payload length", false)
        else
          match read_exact ic header.h_len with
          | None -> Error ("truncated payload", true)
          | Some payload ->
            if Crc32.string payload <> header.h_crc then
              Error ("payload crc mismatch", true)
            else (
              match (Marshal.from_string payload 0 : Ifp_vm.Vm.result) with
              | result -> Ok result
              | exception _ ->
                (* crc verified but the shape didn't decode: a
                   same-version serialisation bug, not a torn write *)
                Error ("undecodable payload", false))
      with _ -> Error ("truncated or undecodable header", false)
    in
    close_in_noerr ic;
    (match verdict with
    | Ok result -> Hit result
    | Error (reason, crc_mismatch) ->
      (* move the damaged file aside so the next run re-misses cleanly
         instead of re-tripping on it forever; keep it for post-mortem *)
      let qpath = quarantine_path path in
      (try Sys.rename path qpath
       with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
      Quarantined { path = qpath; reason; crc_mismatch })

let store t ~digest ~job_name result =
  let path = path_of t digest in
  try
    mkdir_p (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Domain.self () :> int)
    in
    let payload = Marshal.to_string result [] in
    let oc = open_out_bin tmp in
    Marshal.to_channel oc
      { h_magic = magic; h_digest = digest; h_job = job_name;
        h_len = String.length payload; h_crc = Crc32.string payload }
      [];
    output_string oc payload;
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()
