type t = { root : string }

let format_version = 1

(* header stored alongside the result so [find] can reject entries whose
   file name lies about the content (truncated copy, digest collision) *)
type entry_header = { h_magic : string; h_digest : string; h_job : string }

let magic = "ifp-campaign-cache"

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else (
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ())

let create ~dir = { root = dir }

let dir t = t.root

let version_dir t =
  Filename.concat t.root (Printf.sprintf "v%d" format_version)

let path_of t digest =
  let fanout =
    if String.length digest >= 2 then String.sub digest 0 2 else "xx"
  in
  Filename.concat
    (Filename.concat (version_dir t) fanout)
    (digest ^ ".result")

let find t ~digest =
  let path = path_of t digest in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let entry =
      try
        let header : entry_header = Marshal.from_channel ic in
        if header.h_magic = magic && header.h_digest = digest then
          let result : Ifp_vm.Vm.result = Marshal.from_channel ic in
          Some result
        else None
      with _ -> None
    in
    close_in_noerr ic;
    entry

let store t ~digest ~job_name result =
  let path = path_of t digest in
  try
    mkdir_p (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Domain.self () :> int)
    in
    let oc = open_out_bin tmp in
    Marshal.to_channel oc { h_magic = magic; h_digest = digest; h_job = job_name } [];
    Marshal.to_channel oc result [];
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()
