type t = { root : string }

(* v2: Vm.result gained structured abort reasons and fault_injections
   (PR 2) — entries marshalled by v1 binaries must never be read back
   into the new shape. *)
let format_version = 2

(* header stored alongside the result so [find] can reject entries whose
   file name lies about the content (truncated copy, digest collision) *)
type entry_header = { h_magic : string; h_digest : string; h_job : string }

let magic = "ifp-campaign-cache"

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else (
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error ((EEXIST | EISDIR), _, _) -> ())

let create ~dir = { root = dir }

let dir t = t.root

let version_dir t =
  Filename.concat t.root (Printf.sprintf "v%d" format_version)

let path_of t digest =
  let fanout =
    if String.length digest >= 2 then String.sub digest 0 2 else "xx"
  in
  Filename.concat
    (Filename.concat (version_dir t) fanout)
    (digest ^ ".result")

type lookup =
  | Hit of Ifp_vm.Vm.result
  | Miss
  | Quarantined of { path : string; reason : string }

let quarantine_path path = Filename.remove_extension path ^ ".corrupt"

let find t ~digest =
  let path = path_of t digest in
  match open_in_bin path with
  | exception Sys_error _ -> Miss
  | ic ->
    let verdict =
      try
        let header : entry_header = Marshal.from_channel ic in
        if header.h_magic <> magic then Error "bad magic"
        else if header.h_digest <> digest then Error "digest mismatch"
        else
          let result : Ifp_vm.Vm.result = Marshal.from_channel ic in
          Ok result
      with _ -> Error "truncated or undecodable entry"
    in
    close_in_noerr ic;
    (match verdict with
    | Ok result -> Hit result
    | Error reason ->
      (* move the damaged file aside so the next run re-misses cleanly
         instead of re-tripping on it forever; keep it for post-mortem *)
      let qpath = quarantine_path path in
      (try Sys.rename path qpath
       with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
      Quarantined { path = qpath; reason })

let store t ~digest ~job_name result =
  let path = path_of t digest in
  try
    mkdir_p (Filename.dirname path);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Domain.self () :> int)
    in
    let oc = open_out_bin tmp in
    Marshal.to_channel oc { h_magic = magic; h_digest = digest; h_job = job_name } [];
    Marshal.to_channel oc result [];
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> ()
