(** JSONL observability for campaign runs.

    Every significant engine event (job start/finish, cache hit, retry,
    failure, campaign begin/end) is appended as one JSON object per line
    to the event log, so a run can be tailed live and post-processed with
    standard line-oriented tooling. The writer is mutex-protected: worker
    domains emit concurrently and lines never interleave.

    The log is pure observability — it carries wall-clock timings and is
    therefore {e not} expected to be byte-identical across runs. The
    experiment tables on stdout are. *)

(** A minimal JSON value type (no external dependency). *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats serialise as [null] *)
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact one-line rendering with proper string escaping. *)

val write_json_file : path:string -> json -> unit
(** Pretty-ish (2-space indented) rendering to a file, used for the
    end-of-run aggregate ([BENCH_experiments.json]). *)

type t
(** An open JSONL event sink. *)

val create : path:string -> t
(** Opens (truncates) [path] for writing. *)

val null : t
(** A sink that discards everything (logging disabled). *)

val emit : t -> string -> (string * json) list -> unit
(** [emit t event fields] appends one line
    [{"ts": <seconds since create>, "event": event, ...fields}].
    Thread-safe; flushes after every line so the log can be tailed. *)

val close : t -> unit
