(** JSONL observability for campaign runs.

    Every significant engine event (job start/finish, cache hit, retry,
    failure, campaign begin/end) is appended as one JSON object per line
    to the event log, so a run can be tailed live and post-processed with
    standard line-oriented tooling. The writer is mutex-protected: worker
    domains emit concurrently and lines never interleave.

    The log is pure observability — it carries wall-clock timings and is
    therefore {e not} expected to be byte-identical across runs. The
    experiment tables on stdout are. *)

(** A minimal JSON value type (no external dependency). *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats serialise as [null] *)
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact one-line rendering with proper string escaping. *)

val write_json_file : path:string -> json -> unit
(** Pretty-ish (2-space indented) rendering to a file, used for the
    end-of-run aggregate ([BENCH_experiments.json]). *)

type t
(** An open JSONL event sink. *)

val create : path:string -> t
(** Opens (truncates) [path] for writing. *)

val open_append : path:string -> t * bool
(** Reopens an existing log for appending (creating it if missing) —
    the resume path: an interrupted campaign's log is continued, not
    thrown away. A torn final line (crash mid-append) is physically
    truncated away first; the returned flag reports whether that
    happened. Timestamps restart from the reopen. *)

val read_lines : path:string -> string list * bool
(** Crash-tolerant read: every complete (newline-terminated,
    object-shaped) JSONL line of the file, in order, plus a
    [truncated] flag that is [true] iff the file ends in a partial
    line — the signature of a writer killed mid-append. The partial
    line is dropped, never returned. A missing file reads as
    [([], false)]. *)

val iter_lines : path:string -> (string -> unit) -> bool
(** [iter_lines ~path f] applies [f] to each complete line (as
    {!read_lines}) and returns the [truncated] flag. *)

val null : t
(** A sink that discards everything (logging disabled). *)

val emit : t -> string -> (string * json) list -> unit
(** [emit t event fields] appends one line
    [{"ts": <seconds since create>, "event": event, ...fields}].
    Thread-safe; flushes after every line so the log can be tailed. *)

val close : t -> unit
