(** Small numeric helpers for the evaluation harness. *)

val geomean : float list -> float
(** Geometric mean of positive values. Empty list yields [1.0]. *)

val mean : float list -> float
val percent : float -> string
(** [percent 1.12] is ["+12%"]; [percent 0.94] is ["-6%"]. *)

val ratio : float -> float -> float
(** [ratio x base] is [x /. base], except that [ratio x 0.] is defined
    as [0.] for every [x] (including [x = 0.]). The zero-base case
    arises when a variant produced no work to compare against (e.g. an
    aborted run with zero cycles); callers that feed the result to
    {!geomean} should filter such sentinel zeros out first, since a zero
    ratio is not a meaningful overhead. *)
