(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320], reflected) over byte
    strings.

    Used by the campaign persistence layers ([lib/campaign]'s result
    cache and write-ahead journal) to detect torn writes and bit rot
    deterministically, instead of relying on [Marshal] happening to
    raise on garbage. The checksum is stored alongside the payload it
    covers; a mismatch on read means the record must be discarded (and,
    for the journal, that replay has reached the torn tail). *)

val string : string -> int32
(** [string s] is the CRC-32 of the whole of [s]. The standard check
    value holds: [string "123456789" = 0xCBF43926l]. *)

val sub : string -> pos:int -> len:int -> int32
(** CRC-32 of [len] bytes of [s] starting at [pos].
    @raise Invalid_argument if the range is out of bounds. *)

val to_hex : int32 -> string
(** 8-character lowercase hex rendering (for log/event fields). *)
