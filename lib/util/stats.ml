let geomean = function
  | [] -> 1.0
  | xs ->
    let n = List.length xs in
    let sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (sum /. float_of_int n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percent r =
  let p = (r -. 1.0) *. 100.0 in
  if p >= 0.0 then Printf.sprintf "+%.1f%%" p else Printf.sprintf "%.1f%%" p

let ratio x base = if base = 0.0 then 0.0 else x /. base
