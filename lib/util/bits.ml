(* masks are precomputed: [mask] sits on hot paths (via [u48],
   [extract], tag-field decoding) and without flambda the shift/sub
   would re-run at every call *)
let masks =
  Array.init 64 (fun w ->
      if w = 0 then 0L else Int64.sub (Int64.shift_left 1L w) 1L)

let mask w =
  if w < 0 || w > 63 then invalid_arg "Bits.mask";
  Array.unsafe_get masks w

let extract x ~lo ~width =
  Int64.logand (Int64.shift_right_logical x lo) (mask width)

let insert x ~lo ~width v =
  let m = Int64.shift_left (mask width) lo in
  let v = Int64.shift_left (Int64.logand v (mask width)) lo in
  Int64.logor (Int64.logand x (Int64.lognot m)) v

let extract_int x ~lo ~width =
  if width > 62 then invalid_arg "Bits.extract_int";
  Int64.to_int (extract x ~lo ~width)

let insert_int x ~lo ~width v = insert x ~lo ~width (Int64.of_int v)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_pow2 n) then invalid_arg "Bits.log2_exact";
  let rec go k n = if n = 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n =
  if n < 1 then invalid_arg "Bits.ceil_log2";
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let align_up x a =
  if not (is_pow2 a) then invalid_arg "Bits.align_up";
  (x + a - 1) land lnot (a - 1)

let align_down x a =
  if not (is_pow2 a) then invalid_arg "Bits.align_down";
  x land lnot (a - 1)

let align_up64 x a =
  if not (is_pow2 a) then invalid_arg "Bits.align_up64";
  let a64 = Int64.of_int a in
  Int64.logand
    (Int64.add x (Int64.sub a64 1L))
    (Int64.lognot (Int64.sub a64 1L))

let align_down64 x a =
  if not (is_pow2 a) then invalid_arg "Bits.align_down64";
  Int64.logand x (Int64.lognot (Int64.sub (Int64.of_int a) 1L))

let u48 x = Int64.logand x 0xFFFF_FFFF_FFFFL
