(** Per-endpoint circuit breaker for the service client.

    [Closed] --(threshold consecutive failures)--> [Open]
    --(after [reset_timeout], next {!allow})--> [Half_open] (single
    probe) --success--> [Closed], --failure--> [Open] (re-trip).

    While [Open], {!allow} answers [false] without touching the
    endpoint: a dead daemon costs each call a counter bump instead of a
    connect timeout, and the fleet of tenants stops hammering a socket
    that cannot answer. [Half_open] admits exactly one probe at a time;
    concurrent callers are rejected until the probe's verdict lands.

    Time is injected ([?now], absolute seconds) for deterministic
    tests; production callers omit it and get [Unix.gettimeofday].
    Thread-safe. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type t

val create : ?failure_threshold:int -> ?reset_timeout:float -> unit -> t
(** Defaults: trip after 5 consecutive failures, probe after 1 s. *)

val allow : ?now:float -> t -> bool
(** May this call proceed? [false] counts as a rejection in {!json}.
    An [Open] breaker past its cool-down transitions to [Half_open] and
    admits the caller as the probe. *)

val on_success : t -> unit
(** Report a successful call: resets the failure streak; a [Half_open]
    probe success closes the breaker. *)

val on_failure : ?now:float -> t -> unit
(** Report a failed call: extends the failure streak (tripping at the
    threshold); a [Half_open] probe failure re-trips to [Open] and
    restarts the cool-down clock. *)

val state : t -> state

val json : t -> Ifp_campaign.Events.json
(** State + streak + transition counters ([opens]/[half_opens]/[closes])
    + [rejected] — the client metrics surface. *)

val transitions : t -> int * int * int
(** [(opens, half_opens, closes)] — exposed for tests and CI gates. *)

val rejected : t -> int
