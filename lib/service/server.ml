module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Events = Ifp_campaign.Events

(* The long-running experiment daemon.

   Topology: the calling thread runs the accept loop (select with a
   short timeout so the stop flag is polled); every accepted connection
   gets a lightweight handler {e thread} (I/O-bound: framing, protocol,
   waiting on tickets); jobs execute on a pool of worker {e domains}
   (CPU-bound: real parallelism), fed through the fair {!Sched}. A
   submit becomes a [ticket] — a one-shot mailbox the handler blocks on
   and the worker fills.

   Results flow through {!Engine.run_job}, the exact single-job path a
   batch campaign uses (journal-replay check aside — the daemon runs
   journal-less; durability is the cache's job), which is what keeps
   daemon-served results byte-identical to a direct [Engine.run].

   Graceful drain: when [stop] fires (typically SIGTERM via
   {!Ifp_campaign.Cli.install_stop}), the listener closes immediately —
   new connections are refused by the OS — while accepted work runs to
   completion: handlers answer every in-flight submit, refuse new ones
   with [Refused "draining"], and close; once the last handler is gone
   the scheduler is closed, the workers drain what is queued and exit,
   and [run] returns the final stats snapshot. *)

type config = {
  socket_path : string;
  workers : int;
  shard : Shard.t option;
  queue_depth : int;  (** per-tenant bound; overflow = Busy backpressure *)
  retries : int;
  backoff : float;
  job_timeout : float option;
  log : Events.t;
  runner : (Job.t -> Ifp_vm.Vm.result) option;  (** test hook *)
  banner : string;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 1;
    shard = None;
    queue_depth = 64;
    retries = 1;
    backoff = 0.05;
    job_timeout = None;
    log = Events.null;
    runner = None;
    banner = "ifp_serviced";
  }

type ticket = {
  t_job : Job.t;
  t_digest : string;
  t_tenant : string;
  t_submitted : float;
  t_m : Mutex.t;
  t_c : Condition.t;
  mutable t_outcome : Engine.outcome option;
}

let ticket_wait tk =
  Mutex.lock tk.t_m;
  while tk.t_outcome = None do
    Condition.wait tk.t_c tk.t_m
  done;
  let o = Option.get tk.t_outcome in
  Mutex.unlock tk.t_m;
  o

let ticket_fill tk outcome =
  Mutex.lock tk.t_m;
  tk.t_outcome <- Some outcome;
  Condition.broadcast tk.t_c;
  Mutex.unlock tk.t_m

(* suggested client backoff when a queue is full: proportional to how
   much work is already stacked up, bounded to keep retry storms and
   starvation both at bay *)
let retry_after ~depth = Float.min 1.0 (0.01 *. Float.of_int (max 1 depth))

type state = {
  cfg : config;
  sched : ticket Sched.t;
  metrics : Metrics.t;
  draining : bool Atomic.t;
  active_handlers : int Atomic.t;
}

let shard_json st =
  match st.cfg.shard with
  | Some s -> Shard.stats_json s
  | None -> Events.Null

let snapshot st =
  Metrics.snapshot st.metrics ~queues:(Sched.depths st.sched)
    ~shard_json:(shard_json st)

(* ---- workers (domains) ---- *)

let worker_loop st ~index =
  let runner = Option.value st.cfg.runner ~default:Engine.default_runner in
  let rec loop () =
    match Sched.pop st.sched with
    | None -> ()
    | Some (_tenant, tk) ->
      let t0 = Unix.gettimeofday () in
      let outcome =
        match
          Engine.run_job
            ~cache:(Option.map (fun s -> Shard.pick s ~digest:tk.t_digest)
                      st.cfg.shard)
            ~journal:None
            ~on_job_done:(fun _ -> ())
            ~log:st.cfg.log ~retries:st.cfg.retries ~backoff:st.cfg.backoff
            ~job_timeout:st.cfg.job_timeout ~runner ~digest:tk.t_digest
            tk.t_job
        with
        | o -> o
        | exception exn ->
          (* run_job already isolates runner faults; this catches bugs in
             the plumbing itself so a worker domain never dies silently *)
          {
            Engine.job = tk.t_job;
            digest = tk.t_digest;
            status = Engine.Failed (Printexc.to_string exn);
            result = None;
            from_cache = false;
            from_journal = false;
            attempts = 1;
            elapsed = Unix.gettimeofday () -. t0;
          }
      in
      Metrics.on_worker_busy st.metrics ~worker:index
        ~seconds:(Unix.gettimeofday () -. t0);
      let ok = match outcome.Engine.status with Engine.Done -> true | _ -> false in
      Metrics.on_done st.metrics ~tenant:tk.t_tenant
        ~latency:(Unix.gettimeofday () -. tk.t_submitted)
        ~from_cache:outcome.Engine.from_cache ~ok;
      ticket_fill tk outcome;
      loop ()
  in
  loop ()

(* ---- connection handlers (threads) ---- *)

let completion_of_outcome (o : Engine.outcome) ~submitted =
  {
    Protocol.c_digest = o.Engine.digest;
    c_status = o.Engine.status;
    c_result_bytes = Protocol.encode_result o.Engine.result;
    c_from_cache = o.Engine.from_cache;
    c_attempts = o.Engine.attempts;
    c_elapsed = Unix.gettimeofday () -. submitted;
  }

let send fd reply = Frame.write fd (Protocol.encode_reply reply)

let handle_request st fd ~tenant ~weight request =
  match request with
  | Protocol.Ping -> send fd Protocol.Pong
  | Protocol.Stats ->
    let snap = snapshot st in
    (* the mirror: every stats request also lands in the JSONL log *)
    Events.emit st.cfg.log "stats" [ ("snapshot", snap) ];
    send fd (Protocol.Stats_reply snap)
  | Protocol.Submit job ->
    Metrics.on_submit st.metrics;
    if Atomic.get st.draining then begin
      Metrics.on_drain_reject st.metrics;
      send fd (Protocol.Refused "draining")
    end
    else begin
      let digest = Job.digest job in
      let tk =
        {
          t_job = job;
          t_digest = digest;
          t_tenant = tenant;
          t_submitted = Unix.gettimeofday ();
          t_m = Mutex.create ();
          t_c = Condition.create ();
          t_outcome = None;
        }
      in
      match Sched.push st.sched ~tenant ~weight tk with
      | Sched.Full { depth; limit } ->
        Metrics.on_busy st.metrics ~tenant;
        send fd
          (Protocol.Busy
             {
               Protocol.b_tenant = tenant;
               b_depth = depth;
               b_limit = limit;
               b_retry_after = retry_after ~depth;
             })
      | Sched.Queued _ ->
        let outcome = ticket_wait tk in
        send fd
          (Protocol.Completed
             (completion_of_outcome outcome ~submitted:tk.t_submitted))
    end

(* wait until [fd] is readable, polling the drain flag; Draining exits
   the handler loop between requests (never mid-request) *)
exception Draining

let wait_readable st fd =
  let rec go () =
    if Atomic.get st.draining then raise Draining;
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> go ()
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let handler st fd =
  Metrics.on_connect st.metrics;
  let close_conn () =
    Metrics.on_disconnect st.metrics;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally:close_conn (fun () ->
      try
        (* versioned handshake before anything else *)
        wait_readable st fd;
        match Frame.read fd with
        | None -> ()
        | Some hello ->
          let hs = Protocol.decode_handshake hello in
          (match Protocol.check_handshake hs with
          | Error reason ->
            Metrics.on_handshake_reject st.metrics;
            send fd (Protocol.Refused reason)
          | Ok () ->
            let tenant = hs.Protocol.hs_tenant in
            let weight = max 1 hs.Protocol.hs_weight in
            Sched.register st.sched ~tenant ~weight;
            send fd
              (Protocol.Welcome
                 { version = Protocol.version; banner = st.cfg.banner });
            Events.emit st.cfg.log "client_connected"
              [
                ("tenant", Events.String tenant);
                ("weight", Events.Int weight);
              ];
            let rec serve () =
              wait_readable st fd;
              match Frame.read fd with
              | None -> ()  (* clean disconnect *)
              | Some payload ->
                handle_request st fd ~tenant ~weight
                  (Protocol.decode_request payload);
                serve ()
            in
            serve ())
      with
      | Draining -> ()
      | Frame.Framing_error reason | Protocol.Protocol_error reason ->
        Metrics.on_protocol_error st.metrics;
        Events.emit st.cfg.log "protocol_error"
          [ ("reason", Events.String reason) ];
        (* best-effort goodbye; the stream may already be dead *)
        (try send fd (Protocol.Refused reason) with _ -> ())
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        (* client went away mid-reply: the job (if any) has completed
           and is cached; nothing to clean up *)
        ()
      | exn ->
        Metrics.on_protocol_error st.metrics;
        Events.emit st.cfg.log "handler_error"
          [ ("reason", Events.String (Printexc.to_string exn)) ])

(* ---- the daemon ---- *)

let listen_socket path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  sock

let run ?(stop = fun () -> false) cfg =
  (* a client dying mid-reply must be an EPIPE error, not a fatal signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let st =
    {
      cfg;
      sched = Sched.create ~depth_limit:cfg.queue_depth ();
      metrics = Metrics.create ~workers:cfg.workers;
      draining = Atomic.make false;
      active_handlers = Atomic.make 0;
    }
  in
  let sock = listen_socket cfg.socket_path in
  Events.emit cfg.log "service_start"
    [
      ("socket", Events.String cfg.socket_path);
      ("workers", Events.Int cfg.workers);
      ("queue_depth", Events.Int cfg.queue_depth);
      ( "shards",
        match cfg.shard with
        | Some s -> Events.Int (Shard.count s)
        | None -> Events.Null );
      ("model_digest", Events.String Job.model_digest);
    ];
  let workers =
    Array.init (max 1 cfg.workers) (fun index ->
        Domain.spawn (fun () -> worker_loop st ~index))
  in
  (* accept loop: select so the stop flag is polled ~5x a second *)
  let rec accept_loop () =
    if stop () then ()
    else
      match Unix.select [ sock ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ ->
        (match Unix.accept sock with
        | fd, _ ->
          Atomic.incr st.active_handlers;
          ignore
            (Thread.create
               (fun () ->
                 Fun.protect
                   ~finally:(fun () -> Atomic.decr st.active_handlers)
                   (fun () -> handler st fd))
               ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ();
  (* ---- drain ---- *)
  Atomic.set st.draining true;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  (* handlers exit between requests (or after answering the in-flight
     one); jobs are bounded, so this terminates — the deadline is a
     backstop against a byzantine peer wedged mid-frame *)
  let deadline = Unix.gettimeofday () +. 60.0 in
  while Atomic.get st.active_handlers > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  Sched.close st.sched;
  Array.iter Domain.join workers;
  let final = snapshot st in
  Events.emit cfg.log "service_stop" [ ("snapshot", final) ];
  final
