module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Events = Ifp_campaign.Events
module Journal = Ifp_campaign.Journal

(* The long-running experiment daemon.

   Topology: the calling thread runs the accept loop (select with a
   short timeout so the stop flag is polled); every accepted connection
   gets a lightweight handler {e thread} (I/O-bound: framing, protocol,
   waiting on tickets); jobs execute on a pool of worker {e domains}
   (CPU-bound: real parallelism), fed through the fair {!Sched}. A
   submit becomes a [ticket] — a one-shot mailbox the handler blocks on
   and the worker fills.

   Results flow through {!Engine.run_job}, the exact single-job path a
   batch campaign uses, which is what keeps daemon-served results
   byte-identical to a direct [Engine.run]. With [journal] set, every
   completion is also framed/CRC'd/flushed to a write-ahead journal
   before the reply goes out, so a SIGKILL'd daemon restarted over the
   same journal serves prior results byte-identically (replay is
   authoritative, ahead of the cache).

   Self-healing (PR 7):
   - {e worker supervision}: a fatal exception escaping the job layer
     (the {!Worker_crash} sentinel, OOM, stack overflow) kills only that
     worker domain; a supervisor logs [worker_crashed], restarts the
     domain, and re-queues the in-flight job. A digest that crashes
     workers [poison_threshold] times is quarantined: its ticket (and
     any later submit of it) is answered [Poisoned] instead of taking
     the fleet down.
   - {e connection reaping}: a connection idle past [idle_timeout]
     between requests (including a half-open handshake that never sends
     its hello), or one whose frame dribbles past [io_timeout]
     (slow-loris), is closed and counted [reaped_connections]. Replies
     carry the same [io_timeout] write deadline, so a client that stops
     reading cannot pin a handler; undeliverable replies are counted
     [send_failed] and logged, never silently dropped.

   Graceful drain: when [stop] fires (typically SIGTERM via
   {!Ifp_campaign.Cli.install_stop}), the listener closes immediately —
   new connections are refused by the OS — while accepted work runs to
   completion: handlers answer every in-flight submit, refuse new ones
   with [Refused "draining"], and close; once the last handler is gone
   (bounded by [drain_timeout]) the scheduler is closed, the workers
   drain what is queued and exit, and [run] returns the final stats
   snapshot. *)

exception Worker_crash of string
(* the worker-killing sentinel: raised by a runner (tests, or real
   plumbing that knows its domain is wedged) to escape the per-job
   isolation and hit the supervisor *)

let fatal_exn = function
  | Worker_crash _ | Out_of_memory | Stack_overflow -> true
  | _ -> false

type config = {
  socket_path : string;
  workers : int;
  shard : Shard.t option;
  queue_depth : int;  (** per-tenant bound; overflow = Busy backpressure *)
  retries : int;
  backoff : float;
  job_timeout : float option;
  drain_timeout : float;  (** max wait for handlers to exit on drain *)
  idle_timeout : float;
      (** reap connections silent this long between requests (also the
          half-open-handshake deadline) *)
  io_timeout : float;
      (** per-frame read/write deadline: a frame (in either direction)
          must complete within this or the connection is reaped *)
  poison_threshold : int;
      (** worker crashes per digest before quarantine ([Poisoned]) *)
  journal : Journal.t option;
      (** crash-restart durability: completions are journaled before
          the reply; replay is authoritative on restart *)
  log : Events.t;
  runner : (Job.t -> Ifp_vm.Vm.result) option;  (** test hook *)
  banner : string;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 1;
    shard = None;
    queue_depth = 64;
    retries = 1;
    backoff = 0.05;
    job_timeout = None;
    drain_timeout = 60.0;
    idle_timeout = 60.0;
    io_timeout = 30.0;
    poison_threshold = 3;
    journal = None;
    log = Events.null;
    runner = None;
    banner = "ifp_serviced";
  }

(* what the worker hands back through the ticket: a normal engine
   outcome, or the quarantine verdict for a worker-killing digest *)
type verdict =
  | Outcome of Engine.outcome
  | Poison of { crashes : int }

type ticket = {
  t_job : Job.t;
  t_digest : string;
  t_tenant : string;
  t_weight : int;
  t_submitted : float;
  t_m : Mutex.t;
  t_c : Condition.t;
  mutable t_verdict : verdict option;
}

let ticket_wait tk =
  Mutex.lock tk.t_m;
  while tk.t_verdict = None do
    Condition.wait tk.t_c tk.t_m
  done;
  let v = Option.get tk.t_verdict in
  Mutex.unlock tk.t_m;
  v

let ticket_fill tk verdict =
  Mutex.lock tk.t_m;
  (* first verdict wins: a crash-requeued ticket that somehow runs twice
     must not flip an already-delivered answer *)
  if tk.t_verdict = None then begin
    tk.t_verdict <- Some verdict;
    Condition.broadcast tk.t_c
  end;
  Mutex.unlock tk.t_m

(* suggested client backoff when a queue is full: proportional to how
   much work is already stacked up, bounded to keep retry storms and
   starvation both at bay *)
let retry_after ~depth = Float.min 1.0 (0.01 *. Float.of_int (max 1 depth))

type state = {
  cfg : config;
  sched : ticket Sched.t;
  metrics : Metrics.t;
  draining : bool Atomic.t;
  active_handlers : int Atomic.t;
  (* worker supervision: which ticket each worker domain is running
     (cleared after the verdict is delivered), and per-digest crash
     counts feeding the poison quarantine *)
  inflight : ticket option Atomic.t array;
  poison_m : Mutex.t;
  poison : (string, int) Hashtbl.t;
}

let poison_count st digest =
  Mutex.lock st.poison_m;
  let n = Option.value ~default:0 (Hashtbl.find_opt st.poison digest) in
  Mutex.unlock st.poison_m;
  n

let note_crash st digest =
  Mutex.lock st.poison_m;
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt st.poison digest) in
  Hashtbl.replace st.poison digest n;
  Mutex.unlock st.poison_m;
  n

let shard_json st =
  match st.cfg.shard with
  | Some s -> Shard.stats_json s
  | None -> Events.Null

let snapshot st =
  Metrics.snapshot st.metrics ~queues:(Sched.depths st.sched)
    ~shard_json:(shard_json st)

(* ---- workers (domains) ---- *)

let worker_loop st ~index =
  let runner = Option.value st.cfg.runner ~default:Engine.default_runner in
  let rec loop () =
    match Sched.pop st.sched with
    | None -> ()
    | Some (_tenant, tk) ->
      Atomic.set st.inflight.(index) (Some tk);
      let t0 = Unix.gettimeofday () in
      let outcome =
        match
          Engine.run_job ~fatal:fatal_exn
            ~cache:(Option.map (fun s -> Shard.pick s ~digest:tk.t_digest)
                      st.cfg.shard)
            ~journal:st.cfg.journal
            ~on_job_done:(fun _ -> ())
            ~log:st.cfg.log ~retries:st.cfg.retries ~backoff:st.cfg.backoff
            ~job_timeout:st.cfg.job_timeout ~runner ~digest:tk.t_digest
            tk.t_job
        with
        | o -> o
        | exception exn when not (fatal_exn exn) ->
          (* run_job already isolates runner faults; this catches bugs in
             the plumbing itself so a worker domain never dies silently.
             Fatal exceptions pass through to the supervisor. *)
          {
            Engine.job = tk.t_job;
            digest = tk.t_digest;
            status = Engine.Failed (Printexc.to_string exn);
            result = None;
            from_cache = false;
            from_journal = false;
            attempts = 1;
            elapsed = Unix.gettimeofday () -. t0;
          }
      in
      Metrics.on_worker_busy st.metrics ~worker:index
        ~seconds:(Unix.gettimeofday () -. t0);
      let ok = match outcome.Engine.status with Engine.Done -> true | _ -> false in
      Metrics.on_done st.metrics ~tenant:tk.t_tenant
        ~latency:(Unix.gettimeofday () -. tk.t_submitted)
        ~from_cache:outcome.Engine.from_cache ~ok;
      ticket_fill tk (Outcome outcome);
      Atomic.set st.inflight.(index) None;
      loop ()
  in
  loop ()

(* the supervisor: a fatal exception killed the worker mid-job — account
   the crash to the in-flight digest, requeue or quarantine it, and
   restart the domain. The worker fleet never shrinks. *)
let rec supervised_worker st ~index =
  match worker_loop st ~index with
  | () -> ()  (* scheduler closed: normal drain exit *)
  | exception exn ->
    let tk = Atomic.exchange st.inflight.(index) None in
    Metrics.on_worker_crash st.metrics;
    Events.emit st.cfg.log "worker_crashed"
      [
        ("worker", Events.Int index);
        ("error", Events.String (Printexc.to_string exn));
        ( "digest",
          match tk with
          | Some tk -> Events.String tk.t_digest
          | None -> Events.Null );
      ];
    (match tk with
    | None -> ()
    | Some tk ->
      let crashes = note_crash st tk.t_digest in
      if crashes >= max 1 st.cfg.poison_threshold then begin
        Events.emit st.cfg.log "digest_poisoned"
          [
            ("digest", Events.String tk.t_digest);
            ("job", Events.String tk.t_job.Job.name);
            ("crashes", Events.Int crashes);
          ];
        ticket_fill tk (Poison { crashes })
      end
      else begin
        Metrics.on_crash_requeue st.metrics;
        match Sched.push st.sched ~tenant:tk.t_tenant ~weight:tk.t_weight tk with
        | Sched.Queued _ -> ()
        | Sched.Full _ ->
          (* queue gone (drain) or full: answer rather than strand the
             handler on a ticket nobody will ever run *)
          ticket_fill tk
            (Outcome
               {
                 Engine.job = tk.t_job;
                 digest = tk.t_digest;
                 status =
                   Engine.Failed
                     (Printf.sprintf "worker crash (%d); requeue refused"
                        crashes);
                 result = None;
                 from_cache = false;
                 from_journal = false;
                 attempts = 1;
                 elapsed = Unix.gettimeofday () -. tk.t_submitted;
               })
      end);
    Metrics.on_worker_restart st.metrics;
    Events.emit st.cfg.log "worker_restarted" [ ("worker", Events.Int index) ];
    supervised_worker st ~index

(* ---- connection handlers (threads) ---- *)

let completion_of_outcome (o : Engine.outcome) ~submitted =
  {
    Protocol.c_digest = o.Engine.digest;
    c_status = o.Engine.status;
    c_result_bytes = Protocol.encode_result o.Engine.result;
    c_from_cache = o.Engine.from_cache;
    c_attempts = o.Engine.attempts;
    c_elapsed = Unix.gettimeofday () -. submitted;
  }

let send st fd reply =
  let deadline = Unix.gettimeofday () +. st.cfg.io_timeout in
  Frame.write ~deadline fd (Protocol.encode_reply reply)

(* the failure-path sends (refusals, goodbyes): delivery is best-effort,
   but a failure is counted and logged, never silently swallowed *)
let send_best_effort st fd reply ~why =
  try send st fd reply
  with exn ->
    Metrics.on_send_failed st.metrics;
    Events.emit st.cfg.log "send_failed"
      [
        ("while", Events.String why);
        ("error", Events.String (Printexc.to_string exn));
      ]

let handle_request st fd ~tenant ~weight request =
  match request with
  | Protocol.Ping -> send st fd Protocol.Pong
  | Protocol.Stats ->
    let snap = snapshot st in
    (* the mirror: every stats request also lands in the JSONL log *)
    Events.emit st.cfg.log "stats" [ ("snapshot", snap) ];
    send st fd (Protocol.Stats_reply snap)
  | Protocol.Submit job ->
    Metrics.on_submit st.metrics;
    if Atomic.get st.draining then begin
      Metrics.on_drain_reject st.metrics;
      send st fd (Protocol.Refused "draining")
    end
    else begin
      let digest = Job.digest job in
      let crashes = poison_count st digest in
      if crashes >= max 1 st.cfg.poison_threshold then begin
        (* quarantined: answer immediately, never queue it again *)
        Metrics.on_poisoned st.metrics;
        send st fd
          (Protocol.Poisoned { Protocol.p_digest = digest; p_crashes = crashes })
      end
      else
        let tk =
          {
            t_job = job;
            t_digest = digest;
            t_tenant = tenant;
            t_weight = weight;
            t_submitted = Unix.gettimeofday ();
            t_m = Mutex.create ();
            t_c = Condition.create ();
            t_verdict = None;
          }
        in
        match Sched.push st.sched ~tenant ~weight tk with
        | Sched.Full { depth; limit } ->
          Metrics.on_busy st.metrics ~tenant;
          send st fd
            (Protocol.Busy
               {
                 Protocol.b_tenant = tenant;
                 b_depth = depth;
                 b_limit = limit;
                 b_retry_after = retry_after ~depth;
               })
        | Sched.Queued _ -> (
          match ticket_wait tk with
          | Outcome outcome ->
            send st fd
              (Protocol.Completed
                 (completion_of_outcome outcome ~submitted:tk.t_submitted))
          | Poison { crashes } ->
            Metrics.on_poisoned st.metrics;
            send st fd
              (Protocol.Poisoned
                 { Protocol.p_digest = digest; p_crashes = crashes }))
    end

(* wait until [fd] is readable, polling the drain flag; Draining exits
   the handler loop between requests (never mid-request), Reaped kills
   a connection idle past its deadline (half-open handshakes and
   gone-quiet clients) *)
exception Draining
exception Reaped of string

let wait_readable st fd ~idle_deadline =
  let rec go () =
    if Atomic.get st.draining then raise Draining;
    if Unix.gettimeofday () > idle_deadline then raise (Reaped "idle");
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> go ()
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* one frame: readability bounded by the idle deadline, then the frame
   itself bounded by io_timeout — a slow-loris can neither sit silent
   nor dribble its way past the reaper *)
let read_frame st fd ~idle_deadline =
  wait_readable st fd ~idle_deadline;
  Frame.read ~deadline:(Unix.gettimeofday () +. st.cfg.io_timeout) fd

let handler st fd =
  Metrics.on_connect st.metrics;
  let close_conn () =
    Metrics.on_disconnect st.metrics;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally:close_conn (fun () ->
      try
        (* versioned handshake before anything else; a half-open peer
           that never says hello is reaped on the same idle clock *)
        match
          read_frame st fd
            ~idle_deadline:(Unix.gettimeofday () +. st.cfg.idle_timeout)
        with
        | None -> ()
        | Some hello ->
          let hs = Protocol.decode_handshake hello in
          (match Protocol.check_handshake hs with
          | Error reason ->
            Metrics.on_handshake_reject st.metrics;
            send_best_effort st fd (Protocol.Refused reason)
              ~why:"handshake_reject"
          | Ok () ->
            let tenant = hs.Protocol.hs_tenant in
            let weight = max 1 hs.Protocol.hs_weight in
            Sched.register st.sched ~tenant ~weight;
            send st fd
              (Protocol.Welcome
                 { version = Protocol.version; banner = st.cfg.banner });
            Events.emit st.cfg.log "client_connected"
              [
                ("tenant", Events.String tenant);
                ("weight", Events.Int weight);
              ];
            let rec serve () =
              match
                read_frame st fd
                  ~idle_deadline:(Unix.gettimeofday () +. st.cfg.idle_timeout)
              with
              | None -> ()  (* clean disconnect *)
              | Some payload ->
                handle_request st fd ~tenant ~weight
                  (Protocol.decode_request payload);
                serve ()
            in
            serve ())
      with
      | Draining -> ()
      | Reaped why | Frame.Timeout why ->
        Metrics.on_reaped st.metrics;
        Events.emit st.cfg.log "connection_reaped"
          [ ("reason", Events.String why) ]
      | Frame.Framing_error reason | Protocol.Protocol_error reason ->
        Metrics.on_protocol_error st.metrics;
        Events.emit st.cfg.log "protocol_error"
          [ ("reason", Events.String reason) ];
        (* best-effort goodbye; the stream may already be dead *)
        send_best_effort st fd (Protocol.Refused reason) ~why:"protocol_error"
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        (* client went away mid-reply: the job (if any) has completed
           and is cached/journaled, but this reply was undeliverable *)
        Metrics.on_send_failed st.metrics;
        Events.emit st.cfg.log "send_failed"
          [ ("while", Events.String "reply"); ("error", Events.String "peer gone") ]
      | exn ->
        Metrics.on_protocol_error st.metrics;
        Events.emit st.cfg.log "handler_error"
          [ ("reason", Events.String (Printexc.to_string exn)) ])

(* ---- the daemon ---- *)

let listen_socket path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  sock

let run ?(stop = fun () -> false) cfg =
  (* a client dying mid-reply must be an EPIPE error, not a fatal signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let st =
    {
      cfg;
      sched = Sched.create ~depth_limit:cfg.queue_depth ();
      metrics = Metrics.create ~workers:cfg.workers;
      draining = Atomic.make false;
      active_handlers = Atomic.make 0;
      inflight = Array.init (max 1 cfg.workers) (fun _ -> Atomic.make None);
      poison_m = Mutex.create ();
      poison = Hashtbl.create 16;
    }
  in
  let sock = listen_socket cfg.socket_path in
  Events.emit cfg.log "service_start"
    [
      ("socket", Events.String cfg.socket_path);
      ("workers", Events.Int cfg.workers);
      ("queue_depth", Events.Int cfg.queue_depth);
      ( "shards",
        match cfg.shard with
        | Some s -> Events.Int (Shard.count s)
        | None -> Events.Null );
      ("journal", Events.Bool (cfg.journal <> None));
      ("idle_timeout", Events.Float cfg.idle_timeout);
      ("io_timeout", Events.Float cfg.io_timeout);
      ("model_digest", Events.String Job.model_digest);
    ];
  let workers =
    Array.init (max 1 cfg.workers) (fun index ->
        Domain.spawn (fun () -> supervised_worker st ~index))
  in
  (* accept loop: select so the stop flag is polled ~5x a second *)
  let rec accept_loop () =
    if stop () then ()
    else
      match Unix.select [ sock ] [] [] 0.2 with
      | [], _, _ -> accept_loop ()
      | _ ->
        (match Unix.accept sock with
        | fd, _ ->
          Atomic.incr st.active_handlers;
          ignore
            (Thread.create
               (fun () ->
                 Fun.protect
                   ~finally:(fun () -> Atomic.decr st.active_handlers)
                   (fun () -> handler st fd))
               ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ();
  (* ---- drain ---- *)
  Atomic.set st.draining true;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  (* handlers exit between requests (or after answering the in-flight
     one); jobs are bounded and frames carry io deadlines, so this
     terminates — [drain_timeout] is the backstop against a byzantine
     peer the reaper somehow hasn't shed *)
  let deadline = Unix.gettimeofday () +. cfg.drain_timeout in
  while Atomic.get st.active_handlers > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  Sched.close st.sched;
  Array.iter Domain.join workers;
  let final = snapshot st in
  Events.emit cfg.log "service_stop" [ ("snapshot", final) ];
  final
