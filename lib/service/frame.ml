module Crc32 = Ifp_util.Crc32

(* Wire framing for the experiment service: every message travels as

     <len : u32 big-endian> <crc : u32 big-endian> <payload : len bytes>

   where [crc] is the CRC-32 of the payload — the same discipline as the
   campaign journal's on-disk frames, applied to the socket. A frame
   that fails any check (torn header, absurd length, short payload, CRC
   mismatch) is a protocol violation: the connection carrying it is
   dead, because after damage there is no way to re-synchronise a
   length-prefixed stream. *)

exception Framing_error of string
(** Raised on any malformed frame; the connection must be dropped. *)

exception Timeout of string
(** A [?deadline] expired mid-frame. The stream is desynchronised at an
    unknown byte offset, so the connection must be dropped — but unlike
    {!Framing_error} the {e peer} did nothing provably wrong: it may
    just be slow (or a slow-loris attacker, which is the point of the
    deadline). *)

(* A frame longer than this is garbage, not a message — refuse to
   allocate for it (a torn or hostile length word can read as 4 GiB).
   Large enough for any marshalled job or result by orders of
   magnitude. *)
let max_frame = 64 * 1024 * 1024

let header_bytes = 8

let put_u32 b pos v =
  Bytes.set b pos (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
  Bytes.set b (pos + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Bytes.set b (pos + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Bytes.set b (pos + 3) (Char.chr (Int32.to_int v land 0xff))

let get_u32 s pos =
  let b i = Int32.of_int (Char.code (Bytes.get s (pos + i))) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor
       (Int32.shift_left (b 1) 16)
       (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

(* deadline plumbing: [None] keeps the historical fully-blocking
   behaviour; [Some t] bounds the whole frame (header + payload) by
   absolute wall-clock [t], which is what defeats a peer dribbling one
   byte per poll interval (each byte would reset any per-read timeout,
   but never the frame deadline) *)

let remaining ~what deadline =
  let left = deadline -. Unix.gettimeofday () in
  if left <= 0.0 then raise (Timeout what);
  left

let wait_readable ~what ~deadline fd =
  match deadline with
  | None -> ()
  | Some dl ->
    let rec go () =
      match Unix.select [ fd ] [] [] (remaining ~what dl) with
      | [], _, _ -> raise (Timeout what)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

let wait_writable ~what ~deadline fd =
  match deadline with
  | None -> ()
  | Some dl ->
    let rec go () =
      match Unix.select [] [ fd ] [] (remaining ~what dl) with
      | _, [], _ -> raise (Timeout what)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

(* a Unix.write can be short (signals, socket buffers): loop. With a
   deadline the fd is switched to non-blocking for the duration (each
   connection fd is owned by exactly one thread) because a blocking
   stream-socket send only returns once the whole buffer is queued —
   select alone cannot bound it. *)
let write_all ?deadline fd buf pos len =
  let off = ref pos and left = ref len in
  match deadline with
  | None ->
    while !left > 0 do
      let n = Unix.write fd buf !off !left in
      off := !off + n;
      left := !left - n
    done
  | Some _ ->
    Unix.set_nonblock fd;
    Fun.protect
      ~finally:(fun () -> try Unix.clear_nonblock fd with Unix.Unix_error _ -> ())
      (fun () ->
        while !left > 0 do
          wait_writable ~what:"write" ~deadline fd;
          match Unix.write fd buf !off !left with
          | n ->
            off := !off + n;
            left := !left - n
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            -> ()
        done)

let write ?deadline fd payload =
  let len = String.length payload in
  if len > max_frame then
    raise (Framing_error (Printf.sprintf "refusing to send %d-byte frame" len));
  let buf = Bytes.create (header_bytes + len) in
  put_u32 buf 0 (Int32.of_int len);
  put_u32 buf 4 (Crc32.string payload);
  Bytes.blit_string payload 0 buf header_bytes len;
  write_all ?deadline fd buf 0 (Bytes.length buf)

(* [at_start]: distinguishes a clean EOF on a frame boundary (None) from
   a torn mid-frame EOF (Framing_error) *)
let read_exact ?deadline fd n ~what ~at_start =
  let buf = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    wait_readable ~what ~deadline fd;
    match Unix.read fd buf !off (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  done;
  if !off = n then Some buf
  else if !off = 0 && at_start then None
  else
    raise
      (Framing_error
         (Printf.sprintf "torn %s: %d of %d bytes before EOF" what !off n))

let read ?deadline fd =
  match read_exact ?deadline fd header_bytes ~what:"header" ~at_start:true with
  | None -> None
  | Some header ->
    let len = Int32.to_int (get_u32 header 0) in
    let crc = get_u32 header 4 in
    if len < 0 || len > max_frame then
      raise (Framing_error (Printf.sprintf "oversized frame: %d bytes" len));
    let payload =
      match read_exact ?deadline fd len ~what:"payload" ~at_start:false with
      | Some b -> Bytes.unsafe_to_string b
      | None -> assert false (* at_start=false never returns None *)
    in
    if Crc32.string payload <> crc then
      raise
        (Framing_error
           (Printf.sprintf "payload crc mismatch (%s != %s)"
              (Crc32.to_hex (Crc32.string payload))
              (Crc32.to_hex crc)));
    Some payload
