(** The daemon's observability surface: counters and per-tenant latency
    histograms behind one lock, snapshotted into the [stats] reply and
    mirrored to the JSONL event log.

    Histograms use power-of-two microsecond buckets (28 buckets, 1 µs to
    ~134 s): O(1) insertion, constant memory, quantiles read as the
    upper bound of the bucket holding the q-th sample (≤ 2x
    over-estimate). The load generator computes exact quantiles
    client-side from raw samples; these are the daemon's cheap always-on
    view. *)

type hist

val hist_create : unit -> hist
val hist_add : hist -> float -> unit
(** Record a latency in seconds. Not thread-safe on its own — callers
    hold their own lock (the {!t} operations below do). *)

val hist_quantile : hist -> float -> float
(** Upper bound (seconds) of the bucket containing the [q]-th sample;
    [0.] when empty. *)

val hist_json : hist -> Ifp_campaign.Events.json

type t

val create : workers:int -> t

val on_connect : t -> unit
val on_disconnect : t -> unit
val on_handshake_reject : t -> unit
val on_protocol_error : t -> unit
val on_submit : t -> unit
val on_busy : t -> tenant:string -> unit
val on_drain_reject : t -> unit

val on_worker_crash : t -> unit
(** A worker domain died to an uncaught (fatal) exception. *)

val on_worker_restart : t -> unit
(** The supervisor respawned a crashed worker domain. *)

val on_reaped : t -> unit
(** A connection was closed by the idle/slow-loris reaper (half-open
    handshake, idle past the deadline, or a frame that dribbled past its
    io deadline). *)

val on_send_failed : t -> unit
(** A reply could not be delivered (peer gone, or write deadline
    expired). The job outcome is unaffected — and cached/journaled — but
    the client never saw this reply. *)

val on_poisoned : t -> unit
(** A [Poisoned] reply was sent: the submitted digest is quarantined. *)

val on_crash_requeue : t -> unit
(** A job in flight during a worker crash was re-queued for another
    attempt (its digest is below the poison threshold). *)

val on_done :
  t -> tenant:string -> latency:float -> from_cache:bool -> ok:bool -> unit
(** [latency] is server-side submit-to-finish seconds; [ok] means the
    engine status was [Done] (guest traps included — those are results,
    not failures). *)

val on_worker_busy : t -> worker:int -> seconds:float -> unit

val snapshot :
  t ->
  queues:(string * int * int) list ->
  shard_json:Ifp_campaign.Events.json ->
  Ifp_campaign.Events.json
(** The [stats] reply body: uptime, connection/submission/completion
    counters, worker utilization (busy seconds / workers x uptime),
    [queues] (from {!Sched.depths}), the shard-cache section, and
    per-tenant job counts + latency histograms. *)
