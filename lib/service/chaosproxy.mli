(** Seeded network-chaos proxy for the experiment service: an in-path
    Unix-socket proxy that mangles the byte stream between client and
    daemon according to a deterministic fault plan — the
    {!Ifp_faultinject}/{!Ifp_campaign.Chaos} attacker model applied to
    the wire. [ifp_loadgen --via-chaos SEED] drives the real daemon
    through it; the resilience tests use it directly.

    Determinism: every fault decision is a pure function of
    [(seed, connection index, direction, chunk index)] ({!decide}), so a
    seed names a reproducible hostile network regardless of thread
    interleaving. (Which {e bytes} land in which chunk still depends on
    timing; the {e schedule} of faults does not.)

    The CRC framing ({!Frame}) guarantees corruption is detected; the
    proxy probes that both endpoints convert detection into recovery —
    drop the connection, reconnect, idempotently re-submit — instead of
    hanging or serving damaged results. *)

type action =
  | Forward  (** pass the chunk through untouched *)
  | Delay of float  (** sleep that many seconds, then forward *)
  | Corrupt of int  (** flip one byte at [offset mod len], then forward *)
  | Truncate of int  (** forward an [n]-byte prefix, then kill the conn *)
  | Drop  (** kill the connection before forwarding (drop mid-frame) *)
  | Dribble  (** slow-loris: forward one byte at a time with delays *)
  | Duplicate  (** forward the chunk twice (duplicate delivery) *)

val action_name : action -> string

type plan = {
  seed : int64;
  delay_rate : float;
  delay_max : float;
  corrupt_rate : float;
  drop_rate : float;
  truncate_rate : float;
  dribble_rate : float;
  dribble_delay : float;
  duplicate_rate : float;
}

val plan :
  ?delay_rate:float ->
  ?delay_max:float ->
  ?corrupt_rate:float ->
  ?drop_rate:float ->
  ?truncate_rate:float ->
  ?dribble_rate:float ->
  ?dribble_delay:float ->
  ?duplicate_rate:float ->
  seed:int64 ->
  unit ->
  plan
(** All rates default to 0.0 (a transparent proxy); rates are
    per-chunk probabilities and are tested cumulatively, so their sum
    should stay below 1. [delay_max] defaults to 0.05 s,
    [dribble_delay] to 0.01 s/byte. *)

val fingerprint : plan -> string

type dir = C2s | S2c

val dir_name : dir -> string

val decide : plan -> conn:int -> dir:dir -> chunk:int -> action
(** The seeded schedule, exposed as a pure function: the action the
    proxy will take on the [chunk]-th read of direction [dir] of the
    [conn]-th accepted connection. Same plan, same indices ⇒ same
    action — asserted by the determinism tests. *)

type t

val start : plan:plan -> listen:string -> upstream:string -> unit -> t
(** Binds [listen] (unlinking any stale socket) and forwards every
    accepted connection to [upstream], applying the plan in both
    directions. Runs on background threads; returns immediately. *)

val stop : t -> unit
(** Stops accepting, closes the listener and unlinks [listen]. In-flight
    pumps wind down as their connections close (they poll the stop flag
    every 0.2 s). *)

val stats_json : t -> Ifp_campaign.Events.json
(** Connections/chunks/bytes forwarded plus per-action fault counts —
    the loadgen embeds this in its benchmark JSON so CI can gate on
    "the plan actually fired". *)
