(** Message layer of the experiment service, one {!Frame} payload per
    message.

    Connection lifecycle: the client opens the socket and sends a
    {!handshake} (magic + protocol {!version} + tenant identity); the
    server answers [Welcome] or [Refused] and, if welcomed, the
    connection settles into a strict request/reply rhythm — each
    {!request} is answered by exactly one {!reply}, in order. [Submit]
    blocks until the job completes ([Completed]) unless the tenant's
    queue is full, in which case the server answers [Busy] immediately
    and the client is expected to back off [b_retry_after] seconds and
    retry ({!Client.submit_wait} does).

    Payloads are a one-byte kind tag followed by a [Marshal]ed OCaml
    value: every type that crosses the wire ({!Ifp_campaign.Job.t},
    {!Ifp_vm.Vm.result}, {!Ifp_campaign.Events.json}) is pure data — no
    closures, no custom blocks — so encoding is stable across the
    daemon and client binaries built from this tree. The tag exists
    because [Marshal] checks structure, never type: without it a
    CRC-valid frame of the {e wrong} message type (e.g. a hostile
    network replaying the handshake frame into the server's request
    loop) would deserialise as type confusion and crash the runtime;
    with it, each decoder rejects frames not addressed to its type with
    a clean {!Protocol_error}. The CRC framing below this layer catches
    torn/corrupt messages; {!Protocol_error} here means a peer speaking
    a different dialect or a replayed/desynchronised frame. Like the
    rest of the campaign tooling, the socket is a local, same-user
    coordination channel, not a trust boundary. *)

module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Events = Ifp_campaign.Events

val magic : string

val version : int
(** Bumped whenever any wire-crossing shape changes; the handshake
    refuses mismatched peers before any job payload is interpreted. *)

exception Protocol_error of string

type handshake = {
  hs_magic : string;
  hs_version : int;
  hs_tenant : string;  (** scheduling identity (fair-share queue key) *)
  hs_weight : int;  (** fair-share weight; clamped to >= 1 server-side *)
}

type request =
  | Submit of Job.t  (** run (or serve from cache) one job *)
  | Stats  (** observability snapshot, also mirrored to the JSONL log *)
  | Ping

(** A completed job as it travels back to the client. [c_result_bytes]
    is the {e canonical} serialisation ([Marshal] with [No_sharing]) of
    the [Ifp_vm.Vm.result option]: equal results serialise to equal
    bytes regardless of in-heap sharing history (a cache round-trip
    introduces sharing a fresh run lacks), which is what lets clients
    and tests assert daemon-served ≡ direct-run byte-for-byte. *)
type completion = {
  c_digest : string;
  c_status : Engine.status;
  c_result_bytes : string;
  c_from_cache : bool;
  c_attempts : int;
  c_elapsed : float;  (** server-side seconds, submit-to-finish *)
}

type busy = {
  b_tenant : string;
  b_depth : int;  (** the tenant queue's depth at rejection *)
  b_limit : int;
  b_retry_after : float;  (** server-suggested client backoff, seconds *)
}

type poisoned = {
  p_digest : string;
  p_crashes : int;  (** worker crashes attributed to this digest *)
}

type reply =
  | Welcome of { version : int; banner : string }
  | Refused of string  (** handshake rejection or drain refusal *)
  | Busy of busy
  | Completed of completion
  | Stats_reply of Events.json
  | Pong
  | Poisoned of poisoned
      (** the job's digest crashed worker domains [p_crashes] times
          (>= the daemon's poison threshold) and is quarantined: the
          daemon refuses to run it again rather than let one bad job
          take the worker fleet down. Terminal for the job, not the
          connection. *)

val encode_result : Ifp_vm.Vm.result option -> string
(** The canonical bytes carried in [c_result_bytes]; also the form both
    sides of a byte-identity check must use. *)

val decode_result : string -> Ifp_vm.Vm.result option

val encode_handshake : handshake -> string
val encode_request : request -> string
val encode_reply : reply -> string

val decode_handshake : string -> handshake
val decode_request : string -> request
val decode_reply : string -> reply

val check_handshake : handshake -> (unit, string) result

val status_string : Engine.status -> string
