module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Events = Ifp_campaign.Events

let magic = "ifp-service"
let version = 1

exception Protocol_error of string

type handshake = {
  hs_magic : string;
  hs_version : int;
  hs_tenant : string;
  hs_weight : int;  (** fair-share weight; clamped to >= 1 server-side *)
}

type request =
  | Submit of Job.t
  | Stats
  | Ping

(* A completed job as it travels back to the client. [result_bytes] is
   the {e canonical} serialisation ([Marshal] with [No_sharing]) of the
   [Vm.result option]: equal results serialise to equal bytes regardless
   of in-heap sharing history (a cache round-trip introduces sharing
   that a fresh run lacks), which is what lets clients and tests assert
   daemon-served ≡ direct-run byte-for-byte. *)
type completion = {
  c_digest : string;
  c_status : Engine.status;
  c_result_bytes : string;
  c_from_cache : bool;
  c_attempts : int;
  c_elapsed : float;  (** server-side seconds, submit-to-finish *)
}

type busy = {
  b_tenant : string;
  b_depth : int;  (** the tenant queue's depth at rejection *)
  b_limit : int;
  b_retry_after : float;  (** server-suggested client backoff, seconds *)
}

type reply =
  | Welcome of { version : int; banner : string }
  | Refused of string  (** handshake rejection or drain refusal *)
  | Busy of busy
  | Completed of completion
  | Stats_reply of Events.json
  | Pong

let encode_result (r : Ifp_vm.Vm.result option) =
  Marshal.to_string r [ Marshal.No_sharing ]

let decode_result s : Ifp_vm.Vm.result option =
  try Marshal.from_string s 0
  with _ -> raise (Protocol_error "undecodable result payload")

let encode_handshake (h : handshake) = Marshal.to_string h []
let encode_request (r : request) = Marshal.to_string r []
let encode_reply (r : reply) = Marshal.to_string r []

(* The CRC framing has already vouched for integrity by the time these
   run, so a decode failure means a peer speaking a different dialect
   (or version skew Marshal happens to survive structurally) — a
   protocol error, terminal for the connection. *)
let decode_handshake s : handshake =
  try Marshal.from_string s 0
  with _ -> raise (Protocol_error "undecodable handshake")

let decode_request s : request =
  try Marshal.from_string s 0
  with _ -> raise (Protocol_error "undecodable request")

let decode_reply s : reply =
  try Marshal.from_string s 0
  with _ -> raise (Protocol_error "undecodable reply")

let check_handshake (h : handshake) =
  if h.hs_magic <> magic then
    Error (Printf.sprintf "bad magic %S (want %S)" h.hs_magic magic)
  else if h.hs_version <> version then
    Error
      (Printf.sprintf "protocol version %d unsupported (server speaks %d)"
         h.hs_version version)
  else if h.hs_tenant = "" then Error "empty tenant name"
  else Ok ()

let status_string : Engine.status -> string = function
  | Engine.Done -> "done"
  | Engine.Failed why -> "failed: " ^ why
  | Engine.Timed_out -> "timed_out"
  | Engine.Skipped -> "skipped"
