module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Events = Ifp_campaign.Events

let magic = "ifp-service"

(* v2 added the Poisoned reply (worker-crash quarantine); the handshake
   requires an exact version match, so v1 clients are refused with a
   clear reason instead of mis-decoding the new constructor *)
let version = 2

exception Protocol_error of string

type handshake = {
  hs_magic : string;
  hs_version : int;
  hs_tenant : string;
  hs_weight : int;  (** fair-share weight; clamped to >= 1 server-side *)
}

type request =
  | Submit of Job.t
  | Stats
  | Ping

(* A completed job as it travels back to the client. [result_bytes] is
   the {e canonical} serialisation ([Marshal] with [No_sharing]) of the
   [Vm.result option]: equal results serialise to equal bytes regardless
   of in-heap sharing history (a cache round-trip introduces sharing
   that a fresh run lacks), which is what lets clients and tests assert
   daemon-served ≡ direct-run byte-for-byte. *)
type completion = {
  c_digest : string;
  c_status : Engine.status;
  c_result_bytes : string;
  c_from_cache : bool;
  c_attempts : int;
  c_elapsed : float;  (** server-side seconds, submit-to-finish *)
}

type busy = {
  b_tenant : string;
  b_depth : int;  (** the tenant queue's depth at rejection *)
  b_limit : int;
  b_retry_after : float;  (** server-suggested client backoff, seconds *)
}

type poisoned = {
  p_digest : string;
  p_crashes : int;  (** worker crashes attributed to this digest *)
}

type reply =
  | Welcome of { version : int; banner : string }
  | Refused of string  (** handshake rejection or drain refusal *)
  | Busy of busy
  | Completed of completion
  | Stats_reply of Events.json
  | Pong
  | Poisoned of poisoned
      (** the job's digest crashed worker domains [p_crashes] times and
          is quarantined: the daemon will not run it again. Terminal for
          the job, not the connection — re-submitting is pointless, but
          other jobs on the same connection proceed normally. *)

let encode_result (r : Ifp_vm.Vm.result option) =
  Marshal.to_string r [ Marshal.No_sharing ]

let decode_result s : Ifp_vm.Vm.result option =
  try Marshal.from_string s 0
  with _ -> raise (Protocol_error "undecodable result payload")

(* Every payload leads with a one-byte kind tag ('H'andshake,
   'R'equest, repl'Y') ahead of the [Marshal] bytes. [Marshal] checks
   structure, never type: a CRC-valid frame of the {e wrong} message
   type (a hostile network replaying the client's handshake frame into
   the server's request loop, say) would otherwise deserialise
   "successfully" as type confusion — [Submit of Job.t] reading
   [hs_magic]'s string as a [Job.t] record — and crash the runtime on
   the first field access. The tag pins each frame to the type its
   decoder expects, so a replayed or desynchronised frame becomes a
   clean {!Protocol_error} (connection dropped, client retries) instead
   of undefined behaviour. *)
let tag_handshake = 'H'
let tag_request = 'R'
let tag_reply = 'Y'

let encode ~tag v = String.make 1 tag ^ Marshal.to_string v []

let decode ~tag ~what s =
  if String.length s < 1 then
    raise (Protocol_error (Printf.sprintf "empty %s payload" what))
  else if s.[0] <> tag then
    raise
      (Protocol_error
         (Printf.sprintf "%s payload tagged %C (want %C)" what s.[0] tag))
  else
    try Marshal.from_string s 1
    with _ -> raise (Protocol_error ("undecodable " ^ what))

let encode_handshake (h : handshake) = encode ~tag:tag_handshake h
let encode_request (r : request) = encode ~tag:tag_request r
let encode_reply (r : reply) = encode ~tag:tag_reply r

(* The CRC framing has already vouched for integrity by the time these
   run, so a decode failure means a peer speaking a different dialect,
   or a well-formed frame arriving where a different message type
   belongs (replay/desync — see the tag rationale above) — a protocol
   error, terminal for the connection. *)
let decode_handshake s : handshake = decode ~tag:tag_handshake ~what:"handshake" s
let decode_request s : request = decode ~tag:tag_request ~what:"request" s
let decode_reply s : reply = decode ~tag:tag_reply ~what:"reply" s

let check_handshake (h : handshake) =
  if h.hs_magic <> magic then
    Error (Printf.sprintf "bad magic %S (want %S)" h.hs_magic magic)
  else if h.hs_version <> version then
    Error
      (Printf.sprintf "protocol version %d unsupported (server speaks %d)"
         h.hs_version version)
  else if h.hs_tenant = "" then Error "empty tenant name"
  else Ok ()

let status_string : Engine.status -> string = function
  | Engine.Done -> "done"
  | Engine.Failed why -> "failed: " ^ why
  | Engine.Timed_out -> "timed_out"
  | Engine.Skipped -> "skipped"
