(** Client library for the experiment daemon: connect + versioned
    handshake, blocking submit with backpressure-aware retry, stats and
    ping. One connection = one tenant identity = one outstanding request
    at a time (run several clients — threads, domains or processes —
    for concurrency; the load generator forks processes).

    Two layers:
    - the {e plain} client below: one socket, failures raise;
    - {!Resilient}: per-call deadlines and budgets, jittered-backoff
      reconnection, idempotent re-submit (jobs are content-addressed by
      digest, so a duplicate submit after an ambiguous failure is served
      from cache/journal, never re-run blind), and a per-endpoint
      {!Breaker} so a dead daemon is not hammered. *)

module Job = Ifp_campaign.Job
module Events = Ifp_campaign.Events

type t

exception Refused of string
(** The server refused the handshake (bad magic/version skew) or is
    draining. *)

exception Poisoned of Protocol.poisoned
(** The daemon has quarantined this job's digest (it crashed worker
    domains repeatedly). Terminal for the job: re-submitting returns the
    same answer. *)

exception Protocol_error of string
(** Re-export of {!Protocol.Protocol_error}: unexpected reply shape or
    mid-conversation EOF. {!Frame.Framing_error} propagates as itself. *)

exception Timeout of string
(** Re-export of {!Frame.Timeout}: a connect/read/write deadline
    expired. *)

val connect :
  ?weight:int ->
  ?connect_timeout:float ->
  ?io_timeout:float ->
  socket:string ->
  tenant:string ->
  unit ->
  t
(** Connects to the daemon's Unix-domain socket and performs the
    handshake ([weight] is the tenant's fair-share weight, default 1).
    [connect_timeout] bounds the connect itself (nonblocking connect +
    select); [io_timeout] bounds every frame this client writes, and
    every reply read except a submit's completion wait (a job
    legitimately takes as long as it takes — bound that with
    {!submit}'s [deadline] or {!Resilient}'s budget). Both default to
    off, preserving plain blocking behaviour. Raises {!Refused},
    {!Protocol_error}, {!Timeout}, or [Unix.Unix_error]
    ([ENOENT]/[ECONNREFUSED] when no daemon is listening). *)

val close : t -> unit

val ping : t -> unit

val stats : t -> Events.json
(** The server's observability snapshot (also mirrored server-side to
    its JSONL log). *)

type submit_result =
  | Completed of Protocol.completion
  | Busy of Protocol.busy  (** bounded-queue backpressure: retry later *)

val submit : ?deadline:float -> t -> Job.t -> submit_result
(** One job; blocks until the server answers (job completion or
    immediate [Busy]), or until [deadline] (absolute
    [Unix.gettimeofday] seconds) expires with {!Timeout}. Raises
    {!Poisoned} for a quarantined digest. *)

val busy_delay : digest:string -> attempt:int -> retry_after:float -> float
(** The client-side backpressure sleep: the server's [retry_after] hint
    scaled by the campaign backoff envelope
    ({!Ifp_campaign.Engine.backoff_delay} — deterministic jitter in
    [[1, 1.5)] seeded by [(digest, attempt)], exponential in [attempt],
    capped at 5 s). Distinct digests sleep distinct times, so a fleet
    of clients bounced by the same full queue wakes up desynchronized
    instead of stampeding in lockstep. Exposed for tests. *)

val submit_wait :
  ?max_tries:int ->
  ?on_busy:(Protocol.busy -> unit) ->
  t ->
  Job.t ->
  Protocol.completion
(** {!submit}, sleeping {!busy_delay} of the server-suggested
    [b_retry_after] and retrying on [Busy] (at most [max_tries]
    attempts, default 1000). [on_busy] observes each rejection (the
    load generator counts them). *)

val result_of_completion : Protocol.completion -> Ifp_vm.Vm.result option
(** Decode the canonical result bytes (see {!Protocol.encode_result}). *)

(** The self-healing client: wraps the plain client in deadlines, a
    reconnect loop with deterministic jittered backoff, idempotent
    re-submit and a circuit {!Breaker}. This is what survives the chaos
    proxy and a daemon SIGKILL+restart in the resilience gate. *)
module Resilient : sig
  exception Exhausted of string
  (** The call budget or attempt budget ran out before a definitive
      answer. *)

  type config = {
    socket : string;
    tenant : string;
    weight : int;
    connect_timeout : float;  (** per-connect deadline, seconds *)
    io_timeout : float;  (** per-frame deadline, seconds *)
    call_budget : float;
        (** overall wall-clock budget for one {!submit} call, across
            all retries/reconnects/breaker waits *)
    reconnect_base : float;
        (** base of the jittered exponential reconnect backoff *)
    max_attempts : int;
    breaker : Breaker.t;  (** shared per-endpoint circuit breaker *)
  }

  val config :
    ?weight:int ->
    ?connect_timeout:float ->
    ?io_timeout:float ->
    ?call_budget:float ->
    ?reconnect_base:float ->
    ?max_attempts:int ->
    ?breaker:Breaker.t ->
    socket:string ->
    tenant:string ->
    unit ->
    config
  (** Defaults: weight 1, connect 5 s, io 30 s, budget 120 s, reconnect
      base 0.05 s, 100 attempts, a fresh {!Breaker.create}. Pass one
      [breaker] to every client of the same endpoint so failure
      evidence is pooled. *)

  type rt

  val create : config -> rt

  val submit : rt -> Job.t -> Protocol.completion
  (** Submit until a definitive answer, reconnecting (lazily) as
      needed. Retryable: connection-level faults (frame errors,
      timeouts, resets, refused connect) and every {!Refused} — a
      refusal may be the server reacting to a frame the network
      corrupted in transit, which is indistinguishable from genuine
      policy per-instance; a deterministic refusal (real version skew)
      burns the attempt/budget caps and surfaces as {!Exhausted}. Each
      retry backs off [Engine.backoff_delay] seeded by
      [(digest, attempt)] and re-submits (idempotent: the digest is the
      job's identity). [Busy] sleeps the jittered hint and does not
      trip the breaker. Terminal: a completed reply, {!Poisoned}, or
      {!Exhausted} when the [call_budget] / [max_attempts] run out.
      While the breaker is open, attempts wait without touching the
      socket. *)

  val reconnects : rt -> int
  (** Connections established after the first (i.e. recoveries). *)

  val resubmits : rt -> int
  (** Submits retried after a connection-level failure or drain refusal
      (idempotent duplicates the daemon absorbs via cache/journal). *)

  val busy_retries : rt -> int

  val breaker : rt -> Breaker.t

  val stats_json : rt -> Events.json
  (** [reconnects], [resubmits], [busy_retries], and the breaker's
      state/transition counters. *)

  val close : rt -> unit
end
