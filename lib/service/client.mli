(** Client library for the experiment daemon: connect + versioned
    handshake, blocking submit with backpressure-aware retry, stats and
    ping. One connection = one tenant identity = one outstanding request
    at a time (run several clients — threads, domains or processes —
    for concurrency; the load generator forks processes). *)

module Job = Ifp_campaign.Job
module Events = Ifp_campaign.Events

type t

exception Refused of string
(** The server refused the handshake (bad magic/version skew) or is
    draining. *)

exception Protocol_error of string
(** Re-export of {!Protocol.Protocol_error}: unexpected reply shape or
    mid-conversation EOF. {!Frame.Framing_error} propagates as itself. *)

val connect : ?weight:int -> socket:string -> tenant:string -> unit -> t
(** Connects to the daemon's Unix-domain socket and performs the
    handshake ([weight] is the tenant's fair-share weight, default 1).
    Raises {!Refused}, {!Protocol_error}, or [Unix.Unix_error]
    ([ENOENT]/[ECONNREFUSED] when no daemon is listening). *)

val close : t -> unit

val ping : t -> unit

val stats : t -> Events.json
(** The server's observability snapshot (also mirrored server-side to
    its JSONL log). *)

type submit_result =
  | Completed of Protocol.completion
  | Busy of Protocol.busy  (** bounded-queue backpressure: retry later *)

val submit : t -> Job.t -> submit_result
(** One job; blocks until the server answers (job completion or
    immediate [Busy]). *)

val submit_wait :
  ?max_tries:int ->
  ?on_busy:(Protocol.busy -> unit) ->
  t ->
  Job.t ->
  Protocol.completion
(** {!submit}, sleeping the server-suggested [b_retry_after] and
    retrying on [Busy] (at most [max_tries] attempts, default 1000).
    [on_busy] observes each rejection (the load generator counts
    them). *)

val result_of_completion : Protocol.completion -> Ifp_vm.Vm.result option
(** Decode the canonical result bytes (see {!Protocol.encode_result}). *)
