module Events = Ifp_campaign.Events

(* ---- latency histograms ----

   Power-of-two microsecond buckets: bucket i counts latencies in
   [2^i, 2^(i+1)) µs, 28 buckets covering 1 µs .. ~134 s — plenty for
   job latencies that span cache hits (tens of µs) to multi-second
   experiment runs. Quantiles are read as the upper bound of the bucket
   containing the q-th sample: an over-estimate by at most 2x, constant
   memory, O(1) insertion under the owner's lock. The load generator
   computes exact quantiles client-side from raw samples; these are the
   daemon's cheap always-on view. *)

let n_buckets = 28

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable max : float;
  buckets : int array;
}

let hist_create () =
  { count = 0; sum = 0.0; max = 0.0; buckets = Array.make n_buckets 0 }

let bucket_of_seconds s =
  let us = s *. 1e6 in
  if us < 1.0 then 0
  else min (n_buckets - 1) (int_of_float (Float.log2 us))

let bucket_upper_seconds i = Float.of_int (1 lsl (i + 1)) *. 1e-6

let hist_add h s =
  h.count <- h.count + 1;
  h.sum <- h.sum +. s;
  if s > h.max then h.max <- s;
  let i = bucket_of_seconds s in
  h.buckets.(i) <- h.buckets.(i) + 1

let hist_quantile h q =
  if h.count = 0 then 0.0
  else begin
    let rank = int_of_float (Float.of_int h.count *. q) in
    let rank = min (h.count - 1) (max 0 rank) in
    let seen = ref 0 and result = ref (bucket_upper_seconds (n_buckets - 1)) in
    (try
       for i = 0 to n_buckets - 1 do
         seen := !seen + h.buckets.(i);
         if !seen > rank then begin
           result := bucket_upper_seconds i;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let ms s = Events.Float (s *. 1000.0)

let hist_json h =
  Events.Obj
    [
      ("count", Events.Int h.count);
      ("mean_ms", if h.count = 0 then Events.Null
       else ms (h.sum /. Float.of_int h.count));
      ("p50_ms", ms (hist_quantile h 0.50));
      ("p95_ms", ms (hist_quantile h 0.95));
      ("p99_ms", ms (hist_quantile h 0.99));
      ("max_ms", ms h.max);
    ]

(* ---- the daemon's counters ---- *)

type tenant = {
  t_hist : hist;  (** submit-to-reply latency as the server saw it *)
  mutable t_jobs : int;
  mutable t_cache_hits : int;
  mutable t_busy : int;  (** backpressure rejections *)
}

type t = {
  m : Mutex.t;
  t0 : float;
  mutable connections : int;  (** total accepted *)
  mutable active : int;  (** currently-open connections *)
  mutable handshake_rejects : int;
  mutable protocol_errors : int;
  mutable submitted : int;
  mutable busy_rejected : int;
  mutable drain_rejected : int;
  mutable completed : int;
  mutable failed : int;  (** Failed / Timed_out at the engine level *)
  mutable cache_hits : int;
  (* self-healing counters (PR 7): worker supervision, connection
     reaping, reply-send accounting, poison quarantine *)
  mutable worker_crashes : int;
  mutable worker_restarts : int;
  mutable reaped_connections : int;
  mutable send_failed : int;
  mutable poisoned_replies : int;
  mutable crash_requeues : int;
  tenants : (string, tenant) Hashtbl.t;
  worker_busy : float array;  (** per-worker cumulative job seconds *)
}

let create ~workers =
  {
    m = Mutex.create ();
    t0 = Unix.gettimeofday ();
    connections = 0;
    active = 0;
    handshake_rejects = 0;
    protocol_errors = 0;
    submitted = 0;
    busy_rejected = 0;
    drain_rejected = 0;
    completed = 0;
    failed = 0;
    cache_hits = 0;
    worker_crashes = 0;
    worker_restarts = 0;
    reaped_connections = 0;
    send_failed = 0;
    poisoned_replies = 0;
    crash_requeues = 0;
    tenants = Hashtbl.create 16;
    worker_busy = Array.make (max 1 workers) 0.0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some x -> x
  | None ->
    let x =
      { t_hist = hist_create (); t_jobs = 0; t_cache_hits = 0; t_busy = 0 }
    in
    Hashtbl.replace t.tenants name x;
    x

let on_connect t = locked t (fun () -> t.connections <- t.connections + 1;
                                       t.active <- t.active + 1)
let on_disconnect t = locked t (fun () -> t.active <- t.active - 1)
let on_handshake_reject t =
  locked t (fun () -> t.handshake_rejects <- t.handshake_rejects + 1)
let on_protocol_error t =
  locked t (fun () -> t.protocol_errors <- t.protocol_errors + 1)
let on_submit t = locked t (fun () -> t.submitted <- t.submitted + 1)

let on_busy t ~tenant =
  locked t (fun () ->
      t.busy_rejected <- t.busy_rejected + 1;
      (tenant_of t tenant).t_busy <- (tenant_of t tenant).t_busy + 1)

let on_drain_reject t =
  locked t (fun () -> t.drain_rejected <- t.drain_rejected + 1)

let on_worker_crash t =
  locked t (fun () -> t.worker_crashes <- t.worker_crashes + 1)

let on_worker_restart t =
  locked t (fun () -> t.worker_restarts <- t.worker_restarts + 1)

let on_reaped t =
  locked t (fun () -> t.reaped_connections <- t.reaped_connections + 1)

let on_send_failed t =
  locked t (fun () -> t.send_failed <- t.send_failed + 1)

let on_poisoned t =
  locked t (fun () -> t.poisoned_replies <- t.poisoned_replies + 1)

let on_crash_requeue t =
  locked t (fun () -> t.crash_requeues <- t.crash_requeues + 1)

let on_done t ~tenant ~latency ~from_cache ~ok =
  locked t (fun () ->
      if ok then t.completed <- t.completed + 1 else t.failed <- t.failed + 1;
      if from_cache then t.cache_hits <- t.cache_hits + 1;
      let tn = tenant_of t tenant in
      tn.t_jobs <- tn.t_jobs + 1;
      if from_cache then tn.t_cache_hits <- tn.t_cache_hits + 1;
      hist_add tn.t_hist latency)

let on_worker_busy t ~worker ~seconds =
  locked t (fun () ->
      if worker >= 0 && worker < Array.length t.worker_busy then
        t.worker_busy.(worker) <- t.worker_busy.(worker) +. seconds)

(* the stats surface: everything the ISSUE's observability story names —
   queue depths come from the scheduler, shard hit rates from the shard
   cache, the rest from these counters *)
let snapshot t ~queues ~shard_json =
  locked t (fun () ->
      let uptime = Unix.gettimeofday () -. t.t0 in
      let workers = Array.length t.worker_busy in
      let busy = Array.fold_left ( +. ) 0.0 t.worker_busy in
      let utilization =
        if uptime <= 0.0 then 0.0
        else busy /. (uptime *. Float.of_int workers)
      in
      Events.Obj
        [
          ("uptime_seconds", Events.Float uptime);
          ("connections", Events.Int t.connections);
          ("active_connections", Events.Int t.active);
          ("handshake_rejects", Events.Int t.handshake_rejects);
          ("protocol_errors", Events.Int t.protocol_errors);
          ("submitted", Events.Int t.submitted);
          ("busy_rejected", Events.Int t.busy_rejected);
          ("drain_rejected", Events.Int t.drain_rejected);
          ("completed", Events.Int t.completed);
          ("failed", Events.Int t.failed);
          ("cache_hits", Events.Int t.cache_hits);
          ("worker_crashes", Events.Int t.worker_crashes);
          ("worker_restarts", Events.Int t.worker_restarts);
          ("reaped_connections", Events.Int t.reaped_connections);
          ("send_failed", Events.Int t.send_failed);
          ("poisoned_replies", Events.Int t.poisoned_replies);
          ("crash_requeues", Events.Int t.crash_requeues);
          ("workers", Events.Int workers);
          ("worker_busy_seconds", Events.Float busy);
          ("worker_utilization", Events.Float utilization);
          ( "queues",
            Events.List
              (List.map
                 (fun (name, weight, depth) ->
                   Events.Obj
                     [
                       ("tenant", Events.String name);
                       ("weight", Events.Int weight);
                       ("depth", Events.Int depth);
                     ])
                 queues) );
          ("cache", shard_json);
          ( "tenants",
            Events.Obj
              (Hashtbl.fold
                 (fun name tn acc ->
                   ( name,
                     Events.Obj
                       [
                         ("jobs", Events.Int tn.t_jobs);
                         ("cache_hits", Events.Int tn.t_cache_hits);
                         ("busy_rejected", Events.Int tn.t_busy);
                         ("latency", hist_json tn.t_hist);
                       ] )
                   :: acc)
                 t.tenants []
              |> List.sort compare) );
        ])
