(** Fair scheduling across tenants: one bounded FIFO per tenant,
    drained by weighted round-robin.

    A tenant with weight [w] gets up to [w] consecutive dequeues each
    time the rotor visits it, so long-term throughput shares approach
    [w_i / Σ w_j] under load while each tenant's own jobs stay FIFO.
    {!push} never blocks: a full tenant queue is reported to the caller,
    which the server turns into a [Busy] backpressure reply — clients
    retry with backoff instead of piling unbounded work into daemon
    memory.

    Thread-safety: every operation locks the scheduler; {!pop} blocks
    (condition wait) until an item or {!close}. Producers are the
    connection-handler threads, consumers the worker domains. *)

type 'a t

type push_result =
  | Queued of { depth : int }  (** tenant-queue depth after the push *)
  | Full of { depth : int; limit : int }
      (** bounded-depth backpressure: nothing was enqueued *)

val create : ?depth_limit:int -> unit -> 'a t
(** [depth_limit] (default 64, min 1) bounds each {e tenant} queue, not
    the total. *)

val register : 'a t -> tenant:string -> weight:int -> unit
(** Pre-register a tenant (weight clamped to >= 1). A tenant's first
    appearance — here or via {!push} — fixes its weight for the
    scheduler's life. *)

val push : 'a t -> tenant:string -> ?weight:int -> 'a -> push_result
(** Enqueue for [tenant], auto-registering it with [weight] (default 1)
    on first sight. Returns [Full] (and enqueues nothing) when the
    tenant's queue is at the limit, or when the scheduler is closed. *)

val pop : 'a t -> (string * 'a) option
(** Next [(tenant, item)] under weighted round-robin; blocks while
    empty. [None] once the scheduler is closed {e and} fully drained —
    items pushed before {!close} are always delivered. *)

val close : 'a t -> unit
val size : 'a t -> int
val depth_limit : 'a t -> int

val depths : 'a t -> (string * int * int) list
(** Per-tenant [(name, weight, queued)] — the stats surface. *)
