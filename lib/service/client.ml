module Job = Ifp_campaign.Job
module Engine = Ifp_campaign.Engine
module Events = Ifp_campaign.Events

exception Refused of string
exception Poisoned of Protocol.poisoned
exception Protocol_error = Protocol.Protocol_error
exception Timeout = Frame.Timeout

type t = {
  fd : Unix.file_descr;
  tenant : string;
  io_timeout : float option;
  mutable closed : bool;
}

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let unexpected what =
  raise (Protocol.Protocol_error ("unexpected reply to " ^ what))

let io_deadline t =
  Option.map (fun tmo -> Unix.gettimeofday () +. tmo) t.io_timeout

(* one request, one reply — EOF mid-conversation is a protocol error
   (the server only closes between requests or when draining). The
   request frame is bounded by [io_timeout]; the reply wait by
   [read_deadline] if given (a submit legitimately blocks for the whole
   job), else by [io_timeout]. *)
let roundtrip ?read_deadline t request =
  Frame.write ?deadline:(io_deadline t) t.fd (Protocol.encode_request request);
  let deadline =
    match read_deadline with Some _ -> read_deadline | None -> io_deadline t
  in
  match Frame.read ?deadline t.fd with
  | None -> raise (Protocol.Protocol_error "server closed the connection")
  | Some payload -> Protocol.decode_reply payload

(* connect with an optional deadline: nonblocking connect + select +
   SO_ERROR, so a wedged listener (or a chaos proxy sitting on the
   backlog) cannot hang the client forever *)
let connect_fd ?timeout socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    (match timeout with
    | None -> Unix.connect fd (Unix.ADDR_UNIX socket)
    | Some tmo ->
      Unix.set_nonblock fd;
      (match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> ()
      | exception
          Unix.Unix_error
            ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        let deadline = Unix.gettimeofday () +. tmo in
        let rec wait () =
          let left = deadline -. Unix.gettimeofday () in
          if left <= 0.0 then raise (Frame.Timeout "connect")
          else
            match Unix.select [] [ fd ] [] left with
            | _, [], _ -> raise (Frame.Timeout "connect")
            | _ -> (
              match Unix.getsockopt_error fd with
              | None -> ()
              | Some err -> raise (Unix.Unix_error (err, "connect", socket)))
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        wait ());
      Unix.clear_nonblock fd);
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect ?(weight = 1) ?connect_timeout ?io_timeout ~socket ~tenant () =
  let fd = connect_fd ?timeout:connect_timeout socket in
  let t = { fd; tenant; io_timeout; closed = false } in
  (try
     Frame.write ?deadline:(io_deadline t) fd
       (Protocol.encode_handshake
          {
            Protocol.hs_magic = Protocol.magic;
            hs_version = Protocol.version;
            hs_tenant = tenant;
            hs_weight = weight;
          });
     match Frame.read ?deadline:(io_deadline t) fd with
     | None -> raise (Protocol.Protocol_error "server closed during handshake")
     | Some payload -> (
       match Protocol.decode_reply payload with
       | Protocol.Welcome _ -> ()
       | Protocol.Refused reason -> raise (Refused reason)
       | _ -> unexpected "handshake")
   with e ->
     close t;
     raise e);
  t

let ping t =
  match roundtrip t Protocol.Ping with
  | Protocol.Pong -> ()
  | Protocol.Refused reason -> raise (Refused reason)
  | _ -> unexpected "ping"

let stats t =
  match roundtrip t Protocol.Stats with
  | Protocol.Stats_reply json -> json
  | Protocol.Refused reason -> raise (Refused reason)
  | _ -> unexpected "stats"

type submit_result =
  | Completed of Protocol.completion
  | Busy of Protocol.busy

let submit ?deadline t job =
  match roundtrip ?read_deadline:deadline t (Protocol.Submit job) with
  | Protocol.Completed c -> Completed c
  | Protocol.Busy b -> Busy b
  | Protocol.Refused reason -> raise (Refused reason)
  | Protocol.Poisoned p -> raise (Poisoned p)
  | _ -> unexpected "submit"

(* the retry-storm fix: when a full queue bounces a whole fleet of
   clients at once, sleeping the server's raw [b_retry_after] wakes them
   all up at the same instant and they stampede the queue again. Scale
   the hint by the campaign backoff envelope — deterministic jitter in
   [1, 1.5) seeded by (digest, attempt) — so each client's wakeup is
   decorrelated (different digests) yet reproducible (same seed math as
   engine retries). *)
let busy_delay ~digest ~attempt ~retry_after =
  Engine.backoff_delay ~base:(Float.max 0.001 retry_after) ~digest ~attempt

(* the polite client loop the backpressure design assumes: sleep the
   jittered server-suggested interval and retry. [on_busy] lets callers
   (the load generator) count rejections. *)
let submit_wait ?(max_tries = 1000) ?(on_busy = fun _ -> ()) t job =
  let digest = Job.digest job in
  let rec go tries =
    match submit t job with
    | Completed c -> c
    | Busy b ->
      if tries >= max_tries then
        raise
          (Protocol.Protocol_error
             (Printf.sprintf "still busy after %d tries" tries))
      else begin
        on_busy b;
        Unix.sleepf
          (busy_delay ~digest ~attempt:tries
             ~retry_after:b.Protocol.b_retry_after);
        go (tries + 1)
      end
  in
  go 1

let result_of_completion (c : Protocol.completion) =
  Protocol.decode_result c.Protocol.c_result_bytes

(* ---- the resilient client ---- *)

module Resilient = struct
  exception Exhausted of string

  type config = {
    socket : string;
    tenant : string;
    weight : int;
    connect_timeout : float;
    io_timeout : float;
    call_budget : float;
    reconnect_base : float;
    max_attempts : int;
    breaker : Breaker.t;
  }

  let config ?(weight = 1) ?(connect_timeout = 5.0) ?(io_timeout = 30.0)
      ?(call_budget = 120.0) ?(reconnect_base = 0.05) ?(max_attempts = 100)
      ?breaker ~socket ~tenant () =
    {
      socket;
      tenant;
      weight;
      connect_timeout;
      io_timeout;
      call_budget;
      reconnect_base;
      max_attempts;
      breaker =
        (match breaker with Some b -> b | None -> Breaker.create ());
    }

  type rt = {
    cfg : config;
    mutable conn : t option;
    mutable ever_connected : bool;
    mutable reconnects : int;
    mutable resubmits : int;
    mutable busy_retries : int;
  }

  let create cfg =
    {
      cfg;
      conn = None;
      ever_connected = false;
      reconnects = 0;
      resubmits = 0;
      busy_retries = 0;
    }

  let drop_conn rt =
    match rt.conn with
    | None -> ()
    | Some c ->
      close c;
      rt.conn <- None

  let ensure_conn rt =
    match rt.conn with
    | Some c -> c
    | None ->
      let c =
        connect ~weight:rt.cfg.weight ~connect_timeout:rt.cfg.connect_timeout
          ~io_timeout:rt.cfg.io_timeout ~socket:rt.cfg.socket
          ~tenant:rt.cfg.tenant ()
      in
      if rt.ever_connected then rt.reconnects <- rt.reconnects + 1;
      rt.ever_connected <- true;
      rt.conn <- Some c;
      c

  (* a failure is {e retryable} when the job may still succeed on
     another attempt: connection-level faults (torn/corrupt frames from
     a hostile network, timeouts, resets, a dead socket) and every
     [Refused] — a refusal can be genuine policy (version skew) but can
     equally be the server reacting to a frame the network corrupted
     {e in transit} (its goodbye quotes a CRC mismatch, or the mangled
     handshake happens to mis-decode as bad magic), and the two are
     indistinguishable per-instance. Retrying resolves the ambiguity: a
     transient refusal clears; a deterministic one burns through
     [max_attempts]/[call_budget] and surfaces as [Exhausted]. Terminal
     immediately: [Poisoned] — a CRC-clean, well-formed verdict that the
     daemon has quarantined this exact job. *)
  let submit rt job =
    let digest = Job.digest job in
    let deadline = Unix.gettimeofday () +. rt.cfg.call_budget in
    let remaining () = deadline -. Unix.gettimeofday () in
    let sleep_capped d =
      let d = Float.min d (remaining ()) in
      if d > 0.0 then Unix.sleepf d
    in
    let give_up what =
      raise
        (Exhausted
           (Printf.sprintf "%s for %s (budget %.1fs)" what digest
              rt.cfg.call_budget))
    in
    let rec go attempt =
      if attempt > rt.cfg.max_attempts then give_up "attempts exhausted";
      if remaining () <= 0.0 then give_up "budget exhausted";
      if not (Breaker.allow rt.cfg.breaker) then begin
        (* circuit open: don't even touch the socket; wait out a slice
           of the cool-down (jittered so a fleet of clients probes the
           half-open breaker at decorrelated times) *)
        sleep_capped
          (Engine.backoff_delay ~base:rt.cfg.reconnect_base ~digest ~attempt);
        go (attempt + 1)
      end
      else
        let retry_conn_failure () =
          Breaker.on_failure rt.cfg.breaker;
          drop_conn rt;
          sleep_capped
            (Engine.backoff_delay ~base:rt.cfg.reconnect_base ~digest ~attempt);
          go (attempt + 1)
        in
        match
          let c = ensure_conn rt in
          (* jobs are content-addressed by digest, so re-submitting
             after an ambiguous failure is idempotent: the daemon serves
             a duplicate from cache/journal instead of re-running it *)
          submit ~deadline c job
        with
        | Completed c ->
          Breaker.on_success rt.cfg.breaker;
          c
        | Busy b ->
          (* the server answered: the endpoint is healthy, just loaded *)
          Breaker.on_success rt.cfg.breaker;
          rt.busy_retries <- rt.busy_retries + 1;
          sleep_capped
            (busy_delay ~digest ~attempt ~retry_after:b.Protocol.b_retry_after);
          go (attempt + 1)
        | exception Poisoned p ->
          Breaker.on_success rt.cfg.breaker;
          raise (Poisoned p)
        | exception Refused _ ->
          rt.resubmits <- rt.resubmits + 1;
          retry_conn_failure ()
        | exception
            ( Frame.Framing_error _ | Frame.Timeout _
            | Protocol.Protocol_error _
            | Unix.Unix_error _ | End_of_file ) ->
          if rt.ever_connected && rt.conn <> None then
            rt.resubmits <- rt.resubmits + 1;
          retry_conn_failure ()
    in
    go 1

  let reconnects rt = rt.reconnects
  let resubmits rt = rt.resubmits
  let busy_retries rt = rt.busy_retries
  let breaker rt = rt.cfg.breaker

  let stats_json rt =
    Events.Obj
      [
        ("reconnects", Events.Int rt.reconnects);
        ("resubmits", Events.Int rt.resubmits);
        ("busy_retries", Events.Int rt.busy_retries);
        ("breaker", Breaker.json rt.cfg.breaker);
      ]

  let close rt = drop_conn rt
end
