module Job = Ifp_campaign.Job
module Events = Ifp_campaign.Events

exception Refused of string
exception Protocol_error = Protocol.Protocol_error

type t = {
  fd : Unix.file_descr;
  tenant : string;
  mutable closed : bool;
}

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let unexpected what =
  raise (Protocol.Protocol_error ("unexpected reply to " ^ what))

(* one request, one reply — EOF mid-conversation is a protocol error
   (the server only closes between requests or when draining) *)
let roundtrip t request =
  Frame.write t.fd (Protocol.encode_request request);
  match Frame.read t.fd with
  | None -> raise (Protocol.Protocol_error "server closed the connection")
  | Some payload -> Protocol.decode_reply payload

let connect ?(weight = 1) ~socket ~tenant () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  let t = { fd; tenant; closed = false } in
  (try
     Frame.write fd
       (Protocol.encode_handshake
          {
            Protocol.hs_magic = Protocol.magic;
            hs_version = Protocol.version;
            hs_tenant = tenant;
            hs_weight = weight;
          });
     match Frame.read fd with
     | None -> raise (Protocol.Protocol_error "server closed during handshake")
     | Some payload -> (
       match Protocol.decode_reply payload with
       | Protocol.Welcome _ -> ()
       | Protocol.Refused reason -> raise (Refused reason)
       | _ -> unexpected "handshake")
   with e ->
     close t;
     raise e);
  t

let ping t =
  match roundtrip t Protocol.Ping with
  | Protocol.Pong -> ()
  | Protocol.Refused reason -> raise (Refused reason)
  | _ -> unexpected "ping"

let stats t =
  match roundtrip t Protocol.Stats with
  | Protocol.Stats_reply json -> json
  | Protocol.Refused reason -> raise (Refused reason)
  | _ -> unexpected "stats"

type submit_result =
  | Completed of Protocol.completion
  | Busy of Protocol.busy

let submit t job =
  match roundtrip t (Protocol.Submit job) with
  | Protocol.Completed c -> Completed c
  | Protocol.Busy b -> Busy b
  | Protocol.Refused reason -> raise (Refused reason)
  | _ -> unexpected "submit"

(* the polite client loop the backpressure design assumes: sleep the
   server-suggested interval and retry. [on_busy] lets callers (the
   load generator) count rejections. *)
let submit_wait ?(max_tries = 1000) ?(on_busy = fun _ -> ()) t job =
  let rec go tries =
    match submit t job with
    | Completed c -> c
    | Busy b ->
      if tries >= max_tries then
        raise
          (Protocol.Protocol_error
             (Printf.sprintf "still busy after %d tries" tries))
      else begin
        on_busy b;
        Unix.sleepf (Float.max 0.001 b.Protocol.b_retry_after);
        go (tries + 1)
      end
  in
  go 1

let result_of_completion (c : Protocol.completion) =
  Protocol.decode_result c.Protocol.c_result_bytes
