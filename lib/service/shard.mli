(** Digest-partitioned result cache for the experiment daemon.

    Shard [i] owns the digests whose leading hex byte maps to [i], each
    shard an independent {!Ifp_campaign.Cache.t} rooted at
    [<dir>/shard-NN] with its own per-instance lock, byte budget (the
    total split evenly) and hit/miss/eviction counters. Partitioning by
    the content address spreads load uniformly, and concurrent
    stores/LRU sweeps contend only within one shard. A sharded
    directory is {e not} readable by the unsharded campaign cache (and
    vice versa) — the daemon owns its cache root. *)

type t

val create : ?max_bytes:int -> dir:string -> shards:int -> unit -> t
(** [shards] clamped to [1..256]. [max_bytes] is the {e total} budget,
    split evenly across shards. *)

val dir : t -> string
val count : t -> int

val index : t -> digest:string -> int
(** Exposed for tests: which shard owns [digest]. *)

val pick : t -> digest:string -> Ifp_campaign.Cache.t

val stats_json : t -> Ifp_campaign.Events.json
(** Aggregate hits/misses/evictions/bytes/hit-rate plus a [per_shard]
    breakdown — the [stats] reply's cache section. *)
