(* Fair scheduling across tenants: one bounded FIFO per tenant, drained
   by weighted round-robin. A tenant with weight [w] gets up to [w]
   consecutive dequeues per visit of the rotor, so long-term throughput
   shares approach w_i / Σw_j while each tenant's own jobs stay FIFO.
   [push] never blocks: a full tenant queue is reported to the caller
   (the connection handler), which turns it into a [Busy] backpressure
   reply — clients retry with backoff instead of piling unbounded work
   into daemon memory. *)

type 'a tenant_q = {
  name : string;
  weight : int;
  q : 'a Queue.t;
}

type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  depth_limit : int;
  mutable tenants : 'a tenant_q array;
  mutable cursor : int;  (** rotor position: index into [tenants] *)
  mutable credit : int;  (** dequeues left for [tenants.(cursor)] *)
  mutable size : int;  (** total queued items across tenants *)
  mutable closed : bool;
}

type push_result = Queued of { depth : int } | Full of { depth : int; limit : int }

let create ?(depth_limit = 64) () =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    depth_limit = max 1 depth_limit;
    tenants = [||];
    cursor = 0;
    credit = 0;
    size = 0;
    closed = false;
  }

let find_tenant t name =
  let n = Array.length t.tenants in
  let rec go i = if i >= n then None else
    if t.tenants.(i).name = name then Some t.tenants.(i) else go (i + 1)
  in
  go 0

(* first push from a tenant fixes its weight for the scheduler's life *)
let register t ~tenant ~weight =
  Mutex.lock t.m;
  (match find_tenant t tenant with
  | Some _ -> ()
  | None ->
    let tq = { name = tenant; weight = max 1 weight; q = Queue.create () } in
    t.tenants <- Array.append t.tenants [| tq |];
    (* a fresh rotor starts on the first tenant with its full credit *)
    if Array.length t.tenants = 1 then t.credit <- tq.weight);
  Mutex.unlock t.m

let push t ~tenant ?(weight = 1) item =
  Mutex.lock t.m;
  let result =
    if t.closed then Full { depth = 0; limit = 0 }
    else begin
      let tq =
        match find_tenant t tenant with
        | Some tq -> tq
        | None ->
          let tq =
            { name = tenant; weight = max 1 weight; q = Queue.create () }
          in
          t.tenants <- Array.append t.tenants [| tq |];
          if Array.length t.tenants = 1 then t.credit <- tq.weight;
          tq
      in
      let depth = Queue.length tq.q in
      if depth >= t.depth_limit then Full { depth; limit = t.depth_limit }
      else begin
        Queue.push item tq.q;
        t.size <- t.size + 1;
        Condition.signal t.nonempty;
        Queued { depth = depth + 1 }
      end
    end
  in
  Mutex.unlock t.m;
  result

(* caller holds the lock and has checked size > 0 *)
let take_locked t =
  let n = Array.length t.tenants in
  let advance () =
    t.cursor <- (t.cursor + 1) mod n;
    t.credit <- t.tenants.(t.cursor).weight
  in
  (* at most [n] advances reach a nonempty queue when size > 0; the
     extra iteration burns leftover credit on an emptied tenant *)
  let rec go tries =
    if tries > n then assert false
    else
      let tq = t.tenants.(t.cursor) in
      if t.credit > 0 && not (Queue.is_empty tq.q) then begin
        t.credit <- t.credit - 1;
        t.size <- t.size - 1;
        (tq.name, Queue.pop tq.q)
      end
      else begin
        advance ();
        go (tries + 1)
      end
  in
  go 0

let pop t =
  Mutex.lock t.m;
  let rec wait () =
    if t.size > 0 then begin
      let item = take_locked t in
      Mutex.unlock t.m;
      Some item
    end
    else if t.closed then begin
      Mutex.unlock t.m;
      None
    end
    else begin
      Condition.wait t.nonempty t.m;
      wait ()
    end
  in
  wait ()

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m

let size t =
  Mutex.lock t.m;
  let s = t.size in
  Mutex.unlock t.m;
  s

let depth_limit t = t.depth_limit

let depths t =
  Mutex.lock t.m;
  let d =
    Array.to_list
      (Array.map (fun tq -> (tq.name, tq.weight, Queue.length tq.q)) t.tenants)
  in
  Mutex.unlock t.m;
  d
