module Cache = Ifp_campaign.Cache
module Events = Ifp_campaign.Events

(* Digest-partitioned result cache: shard i owns the digests whose
   leading hex byte maps to i, each shard being an independent
   {!Cache.t} rooted at <dir>/shard-NN with its own lock, byte budget
   and counters. Partitioning by digest (the content address) spreads
   load uniformly and means concurrent stores/sweeps contend only
   within a shard, never across the whole cache. *)

type t = {
  root : string;
  shards : Cache.t array;
}

let create ?max_bytes ~dir ~shards () =
  let n = max 1 (min 256 shards) in
  let per_shard = Option.map (fun b -> max 1 (b / n)) max_bytes in
  {
    root = dir;
    shards =
      Array.init n (fun i ->
          Cache.create ?max_bytes:per_shard
            ~dir:(Filename.concat dir (Printf.sprintf "shard-%02d" i))
            ());
  }

let dir t = t.root
let count t = Array.length t.shards

let index t ~digest =
  (* digests are lowercase hex; fall back to a char sum for anything
     else so foreign keys still land deterministically *)
  let v =
    if String.length digest >= 2 then
      match int_of_string_opt ("0x" ^ String.sub digest 0 2) with
      | Some v -> v
      | None -> Char.code digest.[0]
    else 0
  in
  v mod Array.length t.shards

let pick t ~digest = t.shards.(index t ~digest)

let totals t =
  Array.fold_left
    (fun (h, m, e, b) shard ->
      let s = Cache.stats shard in
      ( h + s.Cache.hits,
        m + s.Cache.misses,
        e + s.Cache.evictions,
        b + s.Cache.bytes ))
    (0, 0, 0, 0) t.shards

let stats_json t =
  let hits, misses, evictions, bytes = totals t in
  let probes = hits + misses in
  Events.Obj
    [
      ("dir", Events.String t.root);
      ("shards", Events.Int (Array.length t.shards));
      ("hits", Events.Int hits);
      ("misses", Events.Int misses);
      ("evictions", Events.Int evictions);
      ("bytes", Events.Int bytes);
      ( "hit_rate",
        if probes = 0 then Events.Null
        else Events.Float (float_of_int hits /. float_of_int probes) );
      ( "per_shard",
        Events.List
          (Array.to_list (Array.map Cache.stats_json t.shards)) );
    ]
