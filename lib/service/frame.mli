(** Wire framing for the experiment service: length-prefixed,
    CRC32-checksummed messages over a Unix-domain stream socket —

    [<len : u32 be> <crc32(payload) : u32 be> <payload : len bytes>]

    — the campaign journal's on-disk frame discipline
    ({!Ifp_campaign.Journal}) applied to the wire, built on the same
    {!Ifp_util.Crc32}. A stream that fails any check cannot be
    re-synchronised (the length prefix is the only structure), so every
    malformed frame is terminal for its connection. *)

exception Framing_error of string
(** Torn header, oversized/negative length, short payload, or CRC
    mismatch. The connection is unusable; drop it. *)

exception Timeout of string
(** A [?deadline] expired mid-frame. The stream is desynchronised at an
    unknown offset, so the connection must be dropped — but unlike
    {!Framing_error} the peer did nothing provably wrong: it may just be
    slow, or a slow-loris client dribbling bytes (which the deadline
    exists to defeat: per-read timeouts reset on every byte, a frame
    deadline does not). *)

val max_frame : int
(** Frames longer than this (64 MiB) are rejected — on read {e before}
    allocating for the claimed length, which is what defangs a torn or
    hostile length word. *)

val header_bytes : int

val write : ?deadline:float -> Unix.file_descr -> string -> unit
(** Frames and writes [payload], looping over short writes. Raises
    [Unix.Unix_error (EPIPE, _, _)] if the peer is gone, and
    {!Framing_error} when asked to send more than {!max_frame} bytes.
    With [?deadline] (absolute [Unix.gettimeofday] seconds) the whole
    frame must be queued by then or {!Timeout} is raised — a reader that
    stopped draining its socket cannot pin the writer. *)

val read : ?deadline:float -> Unix.file_descr -> string option
(** Reads one frame. [None] on a clean EOF at a frame boundary (the
    peer closed between messages); {!Framing_error} on EOF mid-frame or
    any validation failure. Blocks until a full frame arrives — bounded
    by [?deadline] (absolute seconds, {!Timeout} on expiry), which caps
    the {e whole} frame, not each read. *)
