module Events = Ifp_campaign.Events

(* Per-endpoint circuit breaker for the service client.

   Closed --(threshold consecutive failures)--> Open
   Open   --(reset_timeout elapsed, next allow)--> Half_open (one probe)
   Half_open --probe success--> Closed
   Half_open --probe failure--> Open (re-trip, timer restarts)

   Time is injected (~now) so the state machine is testable without
   sleeping; production callers omit it and get Unix.gettimeofday.
   All operations take the instance lock: the resilient client may be
   shared across threads, and the loadgen children each own one. *)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type t = {
  failure_threshold : int;
  reset_timeout : float;
  m : Mutex.t;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe_in_flight : bool;
  (* transition + rejection counters, for the metrics surface *)
  mutable opens : int;
  mutable half_opens : int;
  mutable closes : int;
  mutable rejected : int;
}

let create ?(failure_threshold = 5) ?(reset_timeout = 1.0) () =
  {
    failure_threshold = max 1 failure_threshold;
    reset_timeout = Float.max 0.0 reset_timeout;
    m = Mutex.create ();
    state = Closed;
    consecutive_failures = 0;
    opened_at = neg_infinity;
    probe_in_flight = false;
    opens = 0;
    half_opens = 0;
    closes = 0;
    rejected = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let allow ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  locked t (fun () ->
      match t.state with
      | Closed -> true
      | Open ->
        if now -. t.opened_at >= t.reset_timeout then begin
          t.state <- Half_open;
          t.half_opens <- t.half_opens + 1;
          t.probe_in_flight <- true;
          true
        end
        else begin
          t.rejected <- t.rejected + 1;
          false
        end
      | Half_open ->
        (* exactly one probe at a time: concurrent callers wait for the
           in-flight probe's verdict instead of stampeding the endpoint *)
        if t.probe_in_flight then begin
          t.rejected <- t.rejected + 1;
          false
        end
        else begin
          t.probe_in_flight <- true;
          true
        end)

let on_success t =
  locked t (fun () ->
      t.consecutive_failures <- 0;
      t.probe_in_flight <- false;
      match t.state with
      | Closed -> ()
      | Half_open | Open ->
        (* Open -> Closed directly can only happen if a call admitted
           before the trip succeeds late; treat it as recovery too *)
        t.state <- Closed;
        t.closes <- t.closes + 1)

let on_failure ?now t =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  locked t (fun () ->
      t.probe_in_flight <- false;
      match t.state with
      | Half_open ->
        (* the probe failed: re-trip, restart the cool-down clock *)
        t.state <- Open;
        t.opened_at <- now;
        t.opens <- t.opens + 1
      | Open ->
        (* a straggler from before the trip; keep the clock as-is *)
        ()
      | Closed ->
        t.consecutive_failures <- t.consecutive_failures + 1;
        if t.consecutive_failures >= t.failure_threshold then begin
          t.state <- Open;
          t.opened_at <- now;
          t.opens <- t.opens + 1
        end)

let state t = locked t (fun () -> t.state)

let json t =
  locked t (fun () ->
      Events.Obj
        [
          ("state", Events.String (state_name t.state));
          ("consecutive_failures", Events.Int t.consecutive_failures);
          ("failure_threshold", Events.Int t.failure_threshold);
          ("reset_timeout_s", Events.Float t.reset_timeout);
          ("opens", Events.Int t.opens);
          ("half_opens", Events.Int t.half_opens);
          ("closes", Events.Int t.closes);
          ("rejected", Events.Int t.rejected);
        ])

let transitions t = locked t (fun () -> (t.opens, t.half_opens, t.closes))
let rejected t = locked t (fun () -> t.rejected)
