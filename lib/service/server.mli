(** The long-running experiment daemon: accepts jobs from many
    concurrent clients over a Unix-domain socket and runs them on a pool
    of worker domains, with a sharded result cache, weighted-fair
    scheduling with bounded-depth backpressure, a [stats] observability
    surface — and, as of PR 7, self-healing: worker-domain supervision
    with poison-digest quarantine, idle/slow-loris connection reaping,
    accounted (never silently swallowed) reply sends, and optional
    crash-restart durability through the campaign write-ahead journal.

    Topology: the calling thread runs the accept loop (select with a
    short timeout, polling [stop]); each connection gets a handler
    {e thread} (I/O-bound); jobs execute on [workers] {e domains}
    (CPU-bound, real parallelism) fed through {!Sched}. Every job goes
    through {!Ifp_campaign.Engine.run_job} — the exact single-job path a
    batch campaign uses — so daemon-served results are byte-identical
    to a direct [Engine.run] of the same jobs (the canonical-bytes
    comparison {!Protocol.encode_result} defines; asserted end-to-end in
    [test/test_service.ml] and by [ifp_loadgen --verify]).

    Self-healing:
    - {e Worker supervision.} A fatal exception escaping the job layer
      ({!Worker_crash}, [Out_of_memory], [Stack_overflow]) kills only
      that worker domain. The supervisor logs [worker_crashed], restarts
      the domain ([worker_restarted]), and re-queues the in-flight job;
      a digest that crashes workers [poison_threshold] times is
      quarantined ([digest_poisoned]) and answered
      [Protocol.Poisoned] — on the pending ticket and on every later
      submit — instead of being allowed to take the fleet down.
    - {e Connection reaping.} A connection silent past [idle_timeout]
      between requests (including a half-open handshake), or whose
      frame dribbles past [io_timeout] (slow-loris), is closed with a
      [connection_reaped] event and counted [reaped_connections].
      Replies carry the same [io_timeout] write deadline so a
      non-reading client cannot pin a handler thread.
    - {e Crash-restart durability.} With [journal] set, completions are
      framed/CRC'd/flushed to the write-ahead journal before the reply;
      a SIGKILL'd daemon restarted over the same journal serves prior
      results byte-identically (journal replay is authoritative, ahead
      of the cache).

    Graceful drain: when [stop] fires (typically SIGTERM via
    {!Ifp_campaign.Cli.install_stop}), the listener closes and the
    socket file is unlinked immediately; in-flight submits are answered,
    new ones are refused with [Refused "draining"], handlers close
    (bounded by [drain_timeout]), queued work is drained by the workers,
    and {!run} returns. *)

module Job = Ifp_campaign.Job
module Events = Ifp_campaign.Events
module Journal = Ifp_campaign.Journal

exception Worker_crash of string
(** The worker-killing sentinel: an exception a runner raises to signal
    its worker domain is wedged beyond per-job isolation. The engine's
    retry machinery lets it escape (via [run_job ~fatal]) so the
    daemon's supervisor can restart the domain. Used by the resilience
    tests; real plumbing faults surface as [Out_of_memory] /
    [Stack_overflow], which are treated the same way. *)

val fatal_exn : exn -> bool
(** The daemon's fatality predicate (passed to [Engine.run_job ~fatal]):
    {!Worker_crash}, [Out_of_memory], [Stack_overflow]. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains (min 1) *)
  shard : Shard.t option;  (** [None] = no result cache *)
  queue_depth : int;  (** per-tenant bound; overflow = [Busy] *)
  retries : int;  (** engine retries per job, as in batch campaigns *)
  backoff : float;
  job_timeout : float option;
      (** per-job watchdog; [None] (the daemon default) avoids the
          watchdog's domain-per-attempt cost on the hot path *)
  drain_timeout : float;
      (** max seconds to wait for handler threads to exit during drain
          before closing the scheduler anyway *)
  idle_timeout : float;
      (** reap connections silent this long between requests; also the
          deadline for a half-open handshake to say hello *)
  io_timeout : float;
      (** per-frame deadline, both directions: a frame must complete
          within this or the connection is reaped (slow-loris defense)
          / the send is abandoned and counted [send_failed] *)
  poison_threshold : int;
      (** worker crashes attributed to one digest before it is
          quarantined with [Poisoned] (min 1) *)
  journal : Journal.t option;
      (** [Some j] = crash-restart durability: completions are
          journaled (flushed) before the reply goes out, and journal
          replay is authoritative after a restart *)
  log : Events.t;  (** JSONL observability (events + stats mirror) *)
  runner : (Job.t -> Ifp_vm.Vm.result) option;  (** test hook *)
  banner : string;
}

val default_config : socket_path:string -> config
(** 1 worker, no cache, depth 64, 1 retry, 0.05 s backoff, no job
    timeout, 60 s drain timeout, 60 s idle timeout, 30 s io timeout,
    poison threshold 3, no journal, null log. *)

val retry_after : depth:int -> float
(** The backpressure hint sent with [Busy]: proportional to the queue
    depth, capped at 1 s. Exposed for tests. *)

val run : ?stop:(unit -> bool) -> config -> Events.json
(** Binds [socket_path] (unlinking any stale socket), serves until
    [stop] fires, drains, and returns the final stats snapshot
    ({!Metrics.snapshot} shape). Emits [service_start],
    [client_connected], [protocol_error], [connection_reaped],
    [worker_crashed], [worker_restarted], [digest_poisoned],
    [send_failed], [stats] (mirroring each stats request) and
    [service_stop] events, plus the per-job engine events
    ([job_start]/[job_finish]/[cache_hit]/[journal_replay]/...).
    Installs SIGPIPE-ignore (a client dying mid-reply must not kill the
    daemon). *)
