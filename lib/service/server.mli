(** The long-running experiment daemon: accepts jobs from many
    concurrent clients over a Unix-domain socket and runs them on a pool
    of worker domains, with a sharded result cache, weighted-fair
    scheduling with bounded-depth backpressure, and a [stats]
    observability surface.

    Topology: the calling thread runs the accept loop (select with a
    short timeout, polling [stop]); each connection gets a handler
    {e thread} (I/O-bound); jobs execute on [workers] {e domains}
    (CPU-bound, real parallelism) fed through {!Sched}. Every job goes
    through {!Ifp_campaign.Engine.run_job} — the exact single-job path a
    batch campaign uses — so daemon-served results are byte-identical
    to a direct [Engine.run] of the same jobs (the canonical-bytes
    comparison {!Protocol.encode_result} defines; asserted end-to-end in
    [test/test_service.ml] and by [ifp_loadgen --verify]).

    Graceful drain: when [stop] fires (typically SIGTERM via
    {!Ifp_campaign.Cli.install_stop}), the listener closes and the
    socket file is unlinked immediately; in-flight submits are answered,
    new ones are refused with [Refused "draining"], handlers close,
    queued work is drained by the workers, and {!run} returns. *)

module Job = Ifp_campaign.Job
module Events = Ifp_campaign.Events

type config = {
  socket_path : string;
  workers : int;  (** worker domains (min 1) *)
  shard : Shard.t option;  (** [None] = no result cache *)
  queue_depth : int;  (** per-tenant bound; overflow = [Busy] *)
  retries : int;  (** engine retries per job, as in batch campaigns *)
  backoff : float;
  job_timeout : float option;
      (** per-job watchdog; [None] (the daemon default) avoids the
          watchdog's domain-per-attempt cost on the hot path *)
  log : Events.t;  (** JSONL observability (events + stats mirror) *)
  runner : (Job.t -> Ifp_vm.Vm.result) option;  (** test hook *)
  banner : string;
}

val default_config : socket_path:string -> config
(** 1 worker, no cache, depth 64, 1 retry, 0.05 s backoff, no timeout,
    null log. *)

val retry_after : depth:int -> float
(** The backpressure hint sent with [Busy]: proportional to the queue
    depth, capped at 1 s. Exposed for tests. *)

val run : ?stop:(unit -> bool) -> config -> Events.json
(** Binds [socket_path] (unlinking any stale socket), serves until
    [stop] fires, drains, and returns the final stats snapshot
    ({!Metrics.snapshot} shape). Emits [service_start], [client_connected],
    [protocol_error], [stats] (mirroring each stats request) and
    [service_stop] events, plus the per-job engine events
    ([job_start]/[job_finish]/[cache_hit]/...). Installs SIGPIPE-ignore
    (a client dying mid-reply must not kill the daemon). *)
