module Prng = Ifp_util.Prng
module Events = Ifp_campaign.Events

(* An in-path Unix-socket chaos proxy: sits between the service client
   and the daemon and mangles the byte stream according to a seeded
   fault plan, in the style of lib/faultinject and lib/campaign/chaos —
   the attacker model of §3.3/§4.3 applied to the network instead of
   memory or disk. Every decision is a pure function of
   (seed, connection index, direction, chunk index), so a given seed
   replays the exact same hostile network no matter how the threads
   interleave: the fault *schedule* is deterministic even though which
   bytes land in which chunk depends on timing.

   The CRC framing (Frame) means corruption is always *detected* —
   the proxy probes that the endpoints convert detection into recovery
   (drop the connection, reconnect, idempotent re-submit) instead of
   serving corrupt results. *)

type action =
  | Forward  (** pass the chunk through untouched *)
  | Delay of float  (** sleep, then forward *)
  | Corrupt of int  (** flip one byte ([offset mod len]), then forward *)
  | Truncate of int  (** forward a prefix, then kill the connection *)
  | Drop  (** kill the connection before forwarding: drop mid-frame *)
  | Dribble  (** slow-loris: forward the chunk one byte at a time *)
  | Duplicate  (** forward the chunk twice: duplicate delivery *)

let action_name = function
  | Forward -> "forward"
  | Delay _ -> "delay"
  | Corrupt _ -> "corrupt"
  | Truncate _ -> "truncate"
  | Drop -> "drop"
  | Dribble -> "dribble"
  | Duplicate -> "duplicate"

type plan = {
  seed : int64;
  delay_rate : float;
  delay_max : float;  (** max injected delay, seconds *)
  corrupt_rate : float;
  drop_rate : float;
  truncate_rate : float;
  dribble_rate : float;
  dribble_delay : float;  (** per-byte delay while dribbling *)
  duplicate_rate : float;
}

let plan ?(delay_rate = 0.0) ?(delay_max = 0.05) ?(corrupt_rate = 0.0)
    ?(drop_rate = 0.0) ?(truncate_rate = 0.0) ?(dribble_rate = 0.0)
    ?(dribble_delay = 0.01) ?(duplicate_rate = 0.0) ~seed () =
  {
    seed;
    delay_rate;
    delay_max;
    corrupt_rate;
    drop_rate;
    truncate_rate;
    dribble_rate;
    dribble_delay;
    duplicate_rate;
  }

let fingerprint p =
  Printf.sprintf
    "chaosproxy:seed=%Ld;delay=%g;corrupt=%g;drop=%g;trunc=%g;dribble=%g;dup=%g"
    p.seed p.delay_rate p.corrupt_rate p.drop_rate p.truncate_rate
    p.dribble_rate p.duplicate_rate

type dir = C2s | S2c

let dir_name = function C2s -> "c2s" | S2c -> "s2c"

(* the seeded decision: one throwaway PRNG per (conn, dir, chunk), as
   Fault.default_plan keys one per (class, seed) — no shared stream to
   race on, and the schedule for chunk k is independent of whether
   chunk k-1's bytes arrived coalesced or split *)
let decide p ~conn ~dir ~chunk =
  let d = match dir with C2s -> 1L | S2c -> 2L in
  let rng =
    Prng.create
      (Prng.mix2 (Prng.mix2 p.seed (Int64.of_int conn))
         (Prng.mix2 d (Int64.of_int chunk)))
  in
  let u = Prng.float rng 1.0 in
  let below limit = u < limit in
  let acc = ref 0.0 in
  let band rate = (* cumulative threshold test over the unit interval *)
    acc := !acc +. rate;
    below !acc
  in
  if band p.drop_rate then Drop
  else if band p.corrupt_rate then Corrupt (Prng.int rng 4096)
  else if band p.truncate_rate then Truncate (1 + Prng.int rng 64)
  else if band p.delay_rate then Delay (Prng.float rng p.delay_max)
  else if band p.dribble_rate then Dribble
  else if band p.duplicate_rate then Duplicate
  else Forward

(* ---- runtime ---- *)

type stats = {
  s_conns : int Atomic.t;
  s_chunks : int Atomic.t;
  s_bytes : int Atomic.t;
  s_delays : int Atomic.t;
  s_corruptions : int Atomic.t;
  s_drops : int Atomic.t;
  s_truncations : int Atomic.t;
  s_dribbles : int Atomic.t;
  s_duplicates : int Atomic.t;
}

type t = {
  t_plan : plan;
  listen : string;
  upstream : string;
  sock : Unix.file_descr;
  stop_flag : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  stats : stats;
  conn_seq : int Atomic.t;
}

let faults_injected st =
  Atomic.get st.s_delays + Atomic.get st.s_corruptions
  + Atomic.get st.s_drops + Atomic.get st.s_truncations
  + Atomic.get st.s_dribbles + Atomic.get st.s_duplicates

let stats_json t =
  let s = t.stats in
  Events.Obj
    [
      ("plan", Events.String (fingerprint t.t_plan));
      ("connections", Events.Int (Atomic.get s.s_conns));
      ("chunks", Events.Int (Atomic.get s.s_chunks));
      ("bytes", Events.Int (Atomic.get s.s_bytes));
      ("faults_injected", Events.Int (faults_injected s));
      ("delays", Events.Int (Atomic.get s.s_delays));
      ("corruptions", Events.Int (Atomic.get s.s_corruptions));
      ("drops", Events.Int (Atomic.get s.s_drops));
      ("truncations", Events.Int (Atomic.get s.s_truncations));
      ("dribbles", Events.Int (Atomic.get s.s_dribbles));
      ("duplicates", Events.Int (Atomic.get s.s_duplicates));
    ]

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd buf pos len =
  let off = ref pos and left = ref len in
  while !left > 0 do
    let n = Unix.write fd buf !off !left in
    off := !off + n;
    left := !left - n
  done

(* both directions share [alive]: a Drop/Truncate (or EOF) in one
   direction takes the whole connection down, as a real mid-path cut
   would; shutdown wakes the peer pump out of its select *)
let kill_conn ~alive ~src ~dst =
  if not (Atomic.exchange alive false) then ()
  else begin
    (try Unix.shutdown src Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.shutdown dst Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  end

let pump t ~conn ~dir ~alive ~src ~dst =
  let s = t.stats in
  let buf = Bytes.create 4096 in
  let chunk = ref 0 in
  let rec loop () =
    if (not (Atomic.get alive)) || Atomic.get t.stop_flag then ()
    else
      match Unix.select [ src ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | _ -> (
        match Unix.read src buf 0 (Bytes.length buf) with
        | 0 -> kill_conn ~alive ~src ~dst
        | exception Unix.Unix_error _ -> kill_conn ~alive ~src ~dst
        | n ->
          Atomic.incr s.s_chunks;
          ignore (Atomic.fetch_and_add s.s_bytes n);
          let k = !chunk in
          incr chunk;
          let forward () = write_all dst buf 0 n in
          (match decide t.t_plan ~conn ~dir ~chunk:k with
          | Forward -> forward ()
          | Delay d ->
            Atomic.incr s.s_delays;
            Thread.delay d;
            forward ()
          | Corrupt off ->
            Atomic.incr s.s_corruptions;
            let i = off mod n in
            Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor 0x40));
            forward ()
          | Truncate k ->
            Atomic.incr s.s_truncations;
            write_all dst buf 0 (min n (max 1 k));
            kill_conn ~alive ~src ~dst
          | Drop ->
            Atomic.incr s.s_drops;
            kill_conn ~alive ~src ~dst
          | Dribble ->
            Atomic.incr s.s_dribbles;
            for i = 0 to n - 1 do
              write_all dst buf i 1;
              Thread.delay t.t_plan.dribble_delay
            done
          | Duplicate ->
            Atomic.incr s.s_duplicates;
            forward ();
            forward ());
          loop ())
  in
  (try loop () with
  | Unix.Unix_error _ -> kill_conn ~alive ~src ~dst
  | _ -> kill_conn ~alive ~src ~dst);
  kill_conn ~alive ~src ~dst

let handle_conn t client =
  match
    let up = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect up (Unix.ADDR_UNIX t.upstream)
     with e ->
       close_quiet up;
       raise e);
    up
  with
  | exception _ -> close_quiet client
  | up ->
    Atomic.incr t.stats.s_conns;
    let conn = Atomic.fetch_and_add t.conn_seq 1 in
    let alive = Atomic.make true in
    let a =
      Thread.create (fun () -> pump t ~conn ~dir:C2s ~alive ~src:client ~dst:up) ()
    in
    let b =
      Thread.create (fun () -> pump t ~conn ~dir:S2c ~alive ~src:up ~dst:client) ()
    in
    Thread.join a;
    Thread.join b;
    close_quiet client;
    close_quiet up

let start ~plan:t_plan ~listen ~upstream () =
  (* the pump threads write into connections the plan itself severs
     (Drop/Truncate shut both ends down): without this, the first write
     into a killed connection raises SIGPIPE and takes the whole
     process with it instead of surfacing as EPIPE. Same discipline as
     [Server.run]. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (try Unix.unlink listen with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX listen);
  Unix.listen sock 64;
  let stats =
    {
      s_conns = Atomic.make 0;
      s_chunks = Atomic.make 0;
      s_bytes = Atomic.make 0;
      s_delays = Atomic.make 0;
      s_corruptions = Atomic.make 0;
      s_drops = Atomic.make 0;
      s_truncations = Atomic.make 0;
      s_dribbles = Atomic.make 0;
      s_duplicates = Atomic.make 0;
    }
  in
  let stop_flag = Atomic.make false in
  let t =
    {
      t_plan;
      listen;
      upstream;
      sock;
      stop_flag;
      accept_thread = None;
      stats;
      conn_seq = Atomic.make 0;
    }
  in
  let accept_loop () =
    let rec go () =
      if Atomic.get stop_flag then ()
      else
        match Unix.select [ sock ] [] [] 0.2 with
        | [], _, _ -> go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | _ ->
          (match Unix.accept sock with
          | client, _ ->
            ignore (Thread.create (fun () -> handle_conn t client) ())
          | exception Unix.Unix_error _ -> ());
          go ()
    in
    go ()
  in
  t.accept_thread <- Some (Thread.create accept_loop ());
  t

let stop t =
  Atomic.set t.stop_flag true;
  Option.iter Thread.join t.accept_thread;
  close_quiet t.sock;
  (try Unix.unlink t.listen with Unix.Unix_error _ -> ())
