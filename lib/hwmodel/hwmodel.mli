(** Hardware area model (paper §5.3, Fig. 13).

    FPGA synthesis is impossible in this environment, so the hardware
    cost evaluation is a structural component model calibrated to the
    paper's Vivado numbers for the modified CVA6: each added hardware
    block carries a LUT and FF cost, attributed to its pipeline stage.
    The model reproduces Fig. 13 (per-stage LUT increase) and supports
    the ablations the paper discusses in §5.3: dropping the layout-table
    walker, dropping the per-GPR bounds register file, or implementing
    fewer metadata schemes.

    Calibration anchors (from the paper): vanilla CVA6 = 37,088 LUTs /
    21,993 FFs; modified = 59,261 LUTs / 32,545 FFs (+60% / +48%); the
    execute stage contributes ~62% of the increase (IFP unit 38%, LSU
    19%); the issue stage ~29% (bounds registers + forwarding); the
    layout-table walker is 3,059 LUTs (36% of the IFP unit) and the three
    scheme blocks together 2,501 LUTs (30%). *)

type stage = Issue | Execute | Frontend_other

type component = {
  cname : string;
  stage : stage;
  luts : int;
  ffs : int;
  feature : feature;
}

and feature =
  | Core_ifp  (** irreducible plumbing: decode, control registers *)
  | Bounds_registers  (** 32 x 96-bit bounds regs + forwarding + wb port *)
  | Ifp_unit_base  (** promote control, MAC unit *)
  | Layout_walker  (** array-of-struct narrowing state machine + divider *)
  | Scheme of string  (** one object-metadata scheme block *)
  | Lsu_widening  (** ldbnd/stbnd datapath, implicit checks *)
  | Temporal_epoch
      (** free-epoch generation machinery: promote-path epoch compare,
          tag gen-nibble datapath, free-path generation bump *)

type config = {
  bounds_registers : bool;
  layout_walker : bool;
  schemes : string list;  (** subset of ["local"; "subheap"; "global"] *)
  temporal : bool;  (** price the free-epoch extension *)
}

val full : config
(** The paper's configuration — temporal off, so all Fig. 13 numbers are
    exactly the calibrated ones. *)

val full_temporal : config
(** {!full} plus the temporal extension. *)

val components : component list

val temporal_components : component list
(** The temporal-extension blocks, kept out of {!components} so the
    Fig. 13 component table is unchanged; included in the totals only
    when [config.temporal] is set. *)

val temporal_metadata_bytes : (string * int) list
(** Extra metadata bytes per object each scheme's temporal encoding
    costs (local-offset and global-table generations pack into spare
    bits; the subheap block record doubles to hold the per-slot freed
    bitmap). *)

val vanilla_luts : int
val vanilla_ffs : int

val added_luts : config -> int
val added_ffs : config -> int

val total_luts : config -> int
val total_ffs : config -> int

val lut_increase_pct : config -> float
(** Percent increase over vanilla (paper: ~60% for the full config). *)

val by_stage : config -> (stage * int) list
(** Added LUTs per pipeline stage (Fig. 13). *)

val stage_to_string : stage -> string

val verilog_loc : (string * int) list
(** Indicative SystemVerilog line counts the paper reports (layout
    walker 1,030; scheme blocks 676 combined). *)
