type stage = Issue | Execute | Frontend_other

type component = {
  cname : string;
  stage : stage;
  luts : int;
  ffs : int;
  feature : feature;
}

and feature =
  | Core_ifp
  | Bounds_registers
  | Ifp_unit_base
  | Layout_walker
  | Scheme of string
  | Lsu_widening
  | Temporal_epoch

type config = {
  bounds_registers : bool;
  layout_walker : bool;
  schemes : string list;
  temporal : bool;
}

let full =
  { bounds_registers = true; layout_walker = true;
    schemes = [ "local"; "subheap"; "global" ]; temporal = false }

let full_temporal = { full with temporal = true }

let vanilla_luts = 37_088
let vanilla_ffs = 21_993

(* Calibrated so the full configuration reproduces the paper's totals:
   59,261 LUTs (+22,173) and 32,545 FFs (+10,552). *)
let components =
  [
    { cname = "bounds register file + forwarding + wb port"; stage = Issue;
      luts = 6430; ffs = 4600; feature = Bounds_registers };
    { cname = "IFP unit (promote control, MAC)"; stage = Execute;
      luts = 2873; ffs = 1400; feature = Ifp_unit_base };
    { cname = "layout-table walker"; stage = Execute;
      luts = 3059; ffs = 900; feature = Layout_walker };
    { cname = "local-offset scheme block"; stage = Execute;
      luts = 980; ffs = 350; feature = Scheme "local" };
    { cname = "subheap scheme block"; stage = Execute;
      luts = 880; ffs = 330; feature = Scheme "subheap" };
    { cname = "global-table scheme block"; stage = Execute;
      luts = 641; ffs = 250; feature = Scheme "global" };
    { cname = "LSU widening (ldbnd/stbnd, implicit checks)"; stage = Execute;
      luts = 4310; ffs = 1600; feature = Lsu_widening };
    { cname = "decode, control registers, perf counters"; stage = Frontend_other;
      luts = 3000; ffs = 1122; feature = Core_ifp };
  ]

(* The temporal extension is deliberately small hardware: a 4-bit epoch
   comparator and freed-flag check folded into the promote path,
   gen-nibble insert/extract in the tag datapath, and the free-path
   read-modify-write that bumps a record's generation. Kept out of
   {!components} so the Fig. 13 table (and its golden) is byte-identical
   with temporal mode merged. *)
let temporal_components =
  [
    { cname = "free-epoch compare + gen extract (promote path)";
      stage = Execute; luts = 210; ffs = 40; feature = Temporal_epoch };
    { cname = "generation bump + freed-flag write (free path)";
      stage = Execute; luts = 260; ffs = 90; feature = Temporal_epoch };
  ]

(* Extra metadata bytes per object, mirrored from lib/metadata: the
   local-offset generation packs into spare layout-word bits and the
   global-table generation into spare row bits (both free); the subheap
   block record doubles from 32 to 64 bytes to hold the per-slot freed
   bitmap (amortized over every slot in the block). *)
let temporal_metadata_bytes =
  [ ("local-offset object", 0); ("subheap block", 32); ("global-table row", 0) ]

let enabled cfg = function
  | Core_ifp | Ifp_unit_base | Lsu_widening -> true
  | Bounds_registers -> cfg.bounds_registers
  | Layout_walker -> cfg.layout_walker
  | Scheme s -> List.mem s cfg.schemes
  | Temporal_epoch -> cfg.temporal

let parts cfg =
  if cfg.temporal then components @ temporal_components else components

let added_luts cfg =
  List.fold_left
    (fun acc c -> if enabled cfg c.feature then acc + c.luts else acc)
    0 (parts cfg)

let added_ffs cfg =
  List.fold_left
    (fun acc c -> if enabled cfg c.feature then acc + c.ffs else acc)
    0 (parts cfg)

let total_luts cfg = vanilla_luts + added_luts cfg
let total_ffs cfg = vanilla_ffs + added_ffs cfg

let lut_increase_pct cfg =
  100.0 *. float_of_int (added_luts cfg) /. float_of_int vanilla_luts

let by_stage cfg =
  List.map
    (fun stage ->
      ( stage,
        List.fold_left
          (fun acc c ->
            if c.stage = stage && enabled cfg c.feature then acc + c.luts
            else acc)
          0 (parts cfg) ))
    [ Issue; Execute; Frontend_other ]

let stage_to_string = function
  | Issue -> "issue"
  | Execute -> "execute"
  | Frontend_other -> "frontend/other"

let verilog_loc =
  [ ("layout-table walker", 1030); ("three scheme blocks", 676) ]
