(** The In-Fat Pointer ISA extension (paper Table 3).

    {!kind} enumerates the new instructions for dynamic-count accounting;
    the functions below give the architectural semantics of the
    single-cycle ALU instructions ([ifpadd], [ifpidx], [ifpbnd],
    [ifpchk], [ifpextract]). [promote] and [ifpmac] touch memory and
    live in {!Ifp_metadata.Promote} / {!Ifp_metadata.Mac}. *)

type kind =
  | Promote  (** pointer bounds retrieval *)
  | Ifpmac  (** MAC computation *)
  | Ldbnd  (** load bounds from memory *)
  | Stbnd  (** store bounds to memory *)
  | Ifpbnd  (** create pointer bounds with given size *)
  | Ifpadd  (** address computation and tag update *)
  | Ifpidx  (** subobject index update *)
  | Ifpchk  (** (bounds) access size check *)
  | Ifpextract  (** extract fields from IFPR / demote *)
  | Ifpmd  (** pointer tag manipulation *)

val all : kind list
val mnemonic : kind -> string

val ifpadd : int64 -> delta:int64 -> bounds:Bounds.t -> int64
(** Address computation with tag update: adds [delta] to the address,
    maintains the local-offset granule-offset field so that the metadata
    address stays invariant, and updates the poison bits from [bounds]
    (valid if the result is within bounds — one past the end included —
    out-of-bounds-recoverable otherwise). A pointer whose granule offset
    can no longer be represented is marked invalid (metadata became
    unreachable). Legacy pointers pass through with just the address
    updated. *)

val ifpidx : int64 -> int -> int64
(** [ifpidx p delta] increments the subobject-index tag field by the
    compile-time constant [delta] (no-op on legacy / global-table
    pointers). Because the layout table is a preorder flattening of the
    subobject tree, the index of a member relative to its parent is a
    static constant — "narrowed by incrementing the pointer's subobject
    index" (paper §3.4). Saturates at the field maximum, in which case
    narrowing later falls back to the object bounds. *)

val ifpbnd : int64 -> size:int -> Bounds.t
(** Create bounds covering [size] bytes at the pointer's address. *)

val ifpchk : int64 -> bounds:Bounds.t -> size:int -> unit
(** Access-size check; raises {!Trap.Trap} [Bounds_violation] on
    failure. Cleared bounds pass. *)

val check_result : int64 -> bounds:Bounds.t -> size:int -> bool
(** Non-raising form of {!ifpchk}. *)

val ifpextract : int64 -> bounds:Bounds.t -> int64
(** Demote: the pointer value to be stored to memory. Updates poison bits
    from [bounds] (the bounds register itself is simply not stored). *)

val load_store_poison_check : int64 -> unit
(** Every RV64 load/store checks the address operand's poison bits and
    traps unless they are Valid (paper §3.2). Outside temporal mode the
    spare poison pattern ([Freed]) traps as an ordinary poisoned
    dereference — it only arises from tag tampering there. *)

val load_store_poison_check_temporal : int64 -> is_store:bool -> unit
(** Temporal-mode poison check: the [Freed] state traps with the
    matching free-epoch cause — {!Trap.Write_to_freed} for stores,
    {!Trap.Use_after_free} for loads. *)
