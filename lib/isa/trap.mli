(** Hardware traps raised by the In-Fat Pointer extension. *)

type t =
  | Poisoned_dereference of int64
      (** load/store with a pointer whose poison bits are not Valid *)
  | Bounds_violation of { ptr : int64; lo : int64; hi : int64; size : int }
      (** explicit or implicit access-size check failed *)
  | Invalid_metadata of { ptr : int64; reason : string }
      (** promote fetched metadata that failed validation *)
  | Mac_mismatch of { ptr : int64 }
      (** metadata MAC did not verify *)
  | Memory_fault of int64  (** unmapped-page access (page-permission trap) *)
  | Use_after_free of { ptr : int64 }
      (** temporal mode: load through a pointer whose allocation was
          freed (freed metadata record or generation mismatch) *)
  | Double_free of { ptr : int64 }
      (** temporal mode: [free] of an allocation already freed *)
  | Write_to_freed of { ptr : int64 }
      (** temporal mode: store through a pointer to a freed allocation *)

exception Trap of t

val raise_trap : t -> 'a
val to_string : t -> string
val pp : Format.formatter -> t -> unit
