(** Pointer-tag codec (paper Fig. 4, plus the temporal extension).

    A pointer is a 64-bit word whose top 20 bits are the tag:

    {v
    63..62  poison bits        00 valid / 01 out-of-bounds-recoverable /
                               10 invalid / 11 freed (temporal)
    61..60  scheme selector    00 legacy / 01 local-offset / 10 subheap /
                               11 global-table
    59..48  scheme metadata + subobject index, per scheme:
              local-offset:  59..54 granule offset, 53..48 subobject index
              subheap:       59..56 control-register index,
                             55..48 subobject index
              global-table:  59..48 table index (no subobject index)
    47..44  free-epoch generation (temporal mode; all-zero otherwise)
    43..0   address
    v}

    The virtual address is 44 bits; the nibble above it carries the
    allocation's free-epoch generation, mirrored from the object's
    metadata record when temporal mode is on and checked again at
    promote. Outside temporal mode the nibble is always zero, so every
    spatial-only encoding is bit-identical to the paper's 48-bit layout.

    The all-zero tag is a canonical user-space address, i.e. a legacy
    pointer — exactly the compatibility property the paper relies on. *)

type poison = Valid | Oob | Invalid | Freed

type scheme = Legacy | Local_offset | Subheap | Global_table

val granule : int
(** Local-offset scheme granule: 16 bytes. *)

val local_offset_max_object : int
(** 1008 bytes: (2^6 - 1) granules. *)

val local_offset_max_elements : int
(** 64 layout-table elements (6-bit subobject index). *)

val subheap_max_elements : int
(** 256 layout-table elements (8-bit subobject index). *)

val global_table_entries : int
(** 4096 rows (12-bit index). *)

val gen_states : int
(** 16 free-epoch generations (4-bit counter); reuse number 16 aliases
    generation 0 — the same ABA window as MTE's 4-bit memory tags. *)

val addr_bits : int
(** 44: virtual-address width. *)

val addr_mask : int64
(** [2^addr_bits - 1] — the address field of a tagged word. *)

val addr : int64 -> int64
(** Low 44 bits. *)

val with_addr : int64 -> int64 -> int64
(** [with_addr p a] keeps the tag (including the generation nibble) of
    [p], replaces the address. *)

val gen : int64 -> int
(** Free-epoch generation nibble (bits 47..44). *)

val with_gen : int64 -> int -> int64

val poison : int64 -> poison
val with_poison : int64 -> poison -> int64

val scheme : int64 -> scheme
val with_scheme : int64 -> scheme -> int64

val meta12 : int64 -> int
(** Raw 12-bit scheme-metadata/subobject field. *)

val with_meta12 : int64 -> int -> int64

val subobj_index : int64 -> int option
(** Subobject index for schemes that have one; [None] for legacy and
    global-table pointers. *)

val with_subobj_index : int64 -> int -> int64
(** Saturating write of the subobject-index field; no-op for legacy and
    global-table pointers. *)

val granule_offset : int64 -> int
(** Local-offset granule-offset field (meaningless for other schemes). *)

val with_granule_offset : int64 -> int -> int64

val creg_index : int64 -> int
(** Subheap control-register index field. *)

val table_index : int64 -> int
(** Global-table index field. *)

val make_legacy : int64 -> int64
(** Canonical pointer: tag zeroed. *)

val make_local_offset : addr:int64 -> granule_off:int -> subobj:int -> int64
val make_subheap : addr:int64 -> creg:int -> subobj:int -> int64
val make_global_table : addr:int64 -> index:int -> int64

val is_null : int64 -> bool
(** Address part is zero. *)

val metadata_addr_local_offset : int64 -> int64
(** For a local-offset pointer: [align_down(addr, granule) +
    granule_offset * granule] — the address of the object metadata. *)

val pp : Format.formatter -> int64 -> unit
