type t =
  | Poisoned_dereference of int64
  | Bounds_violation of { ptr : int64; lo : int64; hi : int64; size : int }
  | Invalid_metadata of { ptr : int64; reason : string }
  | Mac_mismatch of { ptr : int64 }
  | Memory_fault of int64
  | Use_after_free of { ptr : int64 }
  | Double_free of { ptr : int64 }
  | Write_to_freed of { ptr : int64 }

exception Trap of t

let raise_trap t = raise (Trap t)

let to_string = function
  | Poisoned_dereference p -> Printf.sprintf "poisoned dereference of 0x%Lx" p
  | Bounds_violation { ptr; lo; hi; size } ->
    Printf.sprintf "bounds violation: 0x%Lx+%d outside [0x%Lx, 0x%Lx)"
      (Ifp_util.Bits.u48 ptr) size lo hi
  | Invalid_metadata { ptr; reason } ->
    Printf.sprintf "invalid object metadata for 0x%Lx (%s)" ptr reason
  | Mac_mismatch { ptr } -> Printf.sprintf "metadata MAC mismatch for 0x%Lx" ptr
  | Memory_fault a -> Printf.sprintf "memory fault at 0x%Lx" a
  | Use_after_free { ptr } -> Printf.sprintf "use after free of 0x%Lx" ptr
  | Double_free { ptr } -> Printf.sprintf "double free of 0x%Lx" ptr
  | Write_to_freed { ptr } -> Printf.sprintf "write to freed object 0x%Lx" ptr

let pp fmt t = Format.pp_print_string fmt (to_string t)
