type kind =
  | Promote
  | Ifpmac
  | Ldbnd
  | Stbnd
  | Ifpbnd
  | Ifpadd
  | Ifpidx
  | Ifpchk
  | Ifpextract
  | Ifpmd

let all =
  [ Promote; Ifpmac; Ldbnd; Stbnd; Ifpbnd; Ifpadd; Ifpidx; Ifpchk; Ifpextract; Ifpmd ]

let mnemonic = function
  | Promote -> "promote"
  | Ifpmac -> "ifpmac"
  | Ldbnd -> "ldbnd"
  | Stbnd -> "stbnd"
  | Ifpbnd -> "ifpbnd"
  | Ifpadd -> "ifpadd"
  | Ifpidx -> "ifpidx"
  | Ifpchk -> "ifpchk"
  | Ifpextract -> "ifpextract"
  | Ifpmd -> "ifpmd"

let poison_from_bounds p bounds =
  match bounds with
  | Bounds.No_bounds -> p
  | Bounds.Bounds { lo; hi } ->
    let a = Tag.addr p in
    if Int64.compare lo a <= 0 && Int64.compare a hi <= 0 then
      (* pointing one past the end is legal (C off-by-one) but still Valid
         for tag purposes only when strictly inside; exactly [hi] is the
         recoverable state *)
      if Int64.compare a hi < 0 then Tag.with_poison p Tag.Valid
      else Tag.with_poison p Tag.Oob
    else Tag.with_poison p Tag.Oob

let ifpadd p ~delta ~bounds =
  let old_addr = Tag.addr p in
  let new_addr = Int64.logand (Int64.add old_addr delta) Tag.addr_mask in
  let p' = Tag.with_addr p new_addr in
  let p' =
    match Tag.scheme p with
    | Tag.Legacy -> p'
    | Tag.Local_offset ->
      (* keep metadata address invariant across the move *)
      let meta = Tag.metadata_addr_local_offset p in
      let base = Ifp_util.Bits.align_down64 new_addr Tag.granule in
      let diff = Int64.to_int (Int64.sub meta base) in
      if diff < 0 || diff mod Tag.granule <> 0 || diff / Tag.granule > 63 then
        Tag.with_poison p' Tag.Invalid
      else Tag.with_granule_offset p' (diff / Tag.granule)
    | Tag.Subheap | Tag.Global_table -> p'
  in
  match Tag.poison p' with
  | Tag.Invalid | Tag.Freed -> p' (* freed stays freed across arithmetic *)
  | Tag.Valid | Tag.Oob -> poison_from_bounds p' bounds

let ifpidx p delta =
  match Tag.subobj_index p with
  | None -> p
  | Some old -> Tag.with_subobj_index p (old + delta)

let ifpbnd p ~size = Bounds.of_base_size (Tag.addr p) size

let check_result p ~bounds ~size = Bounds.contains bounds ~addr:(Tag.addr p) ~size

let ifpchk p ~bounds ~size =
  match bounds with
  | Bounds.No_bounds -> ()
  | Bounds.Bounds { lo; hi } ->
    if not (check_result p ~bounds ~size) then
      Trap.raise_trap (Trap.Bounds_violation { ptr = p; lo; hi; size })

let ifpextract p ~bounds = poison_from_bounds p bounds

let load_store_poison_check p =
  match Tag.poison p with
  | Tag.Valid -> ()
  | Tag.Oob | Tag.Invalid -> Trap.raise_trap (Trap.Poisoned_dereference p)
  | Tag.Freed ->
    (* outside temporal mode the spare poison pattern has no free-epoch
       meaning — it only arises from tag tampering, and decodes like any
       other poisoned pointer *)
    Trap.raise_trap (Trap.Poisoned_dereference p)

let load_store_poison_check_temporal p ~is_store =
  match Tag.poison p with
  | Tag.Valid -> ()
  | Tag.Oob | Tag.Invalid -> Trap.raise_trap (Trap.Poisoned_dereference p)
  | Tag.Freed ->
    if is_store then Trap.raise_trap (Trap.Write_to_freed { ptr = p })
    else Trap.raise_trap (Trap.Use_after_free { ptr = p })
