open Ifp_util

type poison = Valid | Oob | Invalid | Freed

type scheme = Legacy | Local_offset | Subheap | Global_table

let granule = 16
let local_offset_max_object = 1008
let local_offset_max_elements = 64
let subheap_max_elements = 256
let global_table_entries = 4096
let gen_states = 16

(* field decoders are open-coded shift/mask (not [Bits.extract_int]):
   they run on every tagged-pointer operation and the extra call is
   measurable without flambda *)
let addr_bits = 44
let addr_mask = 0xFFF_FFFF_FFFFL
let addr p = Int64.logand p addr_mask
let with_addr p a = Bits.insert p ~lo:0 ~width:44 a

let gen p = Int64.to_int (Int64.shift_right_logical p 44) land 0xF
let with_gen p g = Bits.insert_int p ~lo:44 ~width:4 g

let poison p =
  match Int64.to_int (Int64.shift_right_logical p 62) land 3 with
  | 0 -> Valid
  | 1 -> Oob
  | 2 -> Invalid
  | _ -> Freed

let with_poison p s =
  let v = match s with Valid -> 0 | Oob -> 1 | Invalid -> 2 | Freed -> 3 in
  Bits.insert_int p ~lo:62 ~width:2 v

let scheme p =
  match Int64.to_int (Int64.shift_right_logical p 60) land 3 with
  | 0 -> Legacy
  | 1 -> Local_offset
  | 2 -> Subheap
  | _ -> Global_table

let with_scheme p s =
  let v =
    match s with Legacy -> 0 | Local_offset -> 1 | Subheap -> 2 | Global_table -> 3
  in
  Bits.insert_int p ~lo:60 ~width:2 v

let meta12 p = Int64.to_int (Int64.shift_right_logical p 48) land 0xFFF
let with_meta12 p v = Bits.insert_int p ~lo:48 ~width:12 v

let subobj_index p =
  match scheme p with
  | Local_offset -> Some (Int64.to_int (Int64.shift_right_logical p 48) land 0x3F)
  | Subheap -> Some (Int64.to_int (Int64.shift_right_logical p 48) land 0xFF)
  | Legacy | Global_table -> None

let with_subobj_index p i =
  match scheme p with
  | Local_offset -> Bits.insert_int p ~lo:48 ~width:6 (min i 63)
  | Subheap -> Bits.insert_int p ~lo:48 ~width:8 (min i 255)
  | Legacy | Global_table -> p

let granule_offset p = Int64.to_int (Int64.shift_right_logical p 54) land 0x3F
let with_granule_offset p v = Bits.insert_int p ~lo:54 ~width:6 v

let creg_index p = Int64.to_int (Int64.shift_right_logical p 56) land 0xF

let table_index p = Int64.to_int (Int64.shift_right_logical p 48) land 0xFFF

let make_legacy a = Bits.u48 a

let make_local_offset ~addr:a ~granule_off ~subobj =
  let p = with_scheme (Int64.logand a addr_mask) Local_offset in
  let p = with_granule_offset p granule_off in
  Bits.insert_int p ~lo:48 ~width:6 subobj

let make_subheap ~addr:a ~creg ~subobj =
  let p = with_scheme (Int64.logand a addr_mask) Subheap in
  let p = Bits.insert_int p ~lo:56 ~width:4 creg in
  Bits.insert_int p ~lo:48 ~width:8 subobj

let make_global_table ~addr:a ~index =
  let p = with_scheme (Int64.logand a addr_mask) Global_table in
  with_meta12 p index

let is_null p = Int64.equal (addr p) 0L

let metadata_addr_local_offset p =
  let a = Bits.align_down64 (addr p) granule in
  Int64.add a (Int64.of_int (granule_offset p * granule))

let pp fmt p =
  let s =
    match scheme p with
    | Legacy -> "legacy"
    | Local_offset -> "local"
    | Subheap -> "subheap"
    | Global_table -> "global"
  in
  let po =
    match poison p with
    | Valid -> ""
    | Oob -> "!oob"
    | Invalid -> "!inv"
    | Freed -> "!freed"
  in
  Format.fprintf fmt "%s%s:0x%Lx[%d]" s po (addr p) (meta12 p)
