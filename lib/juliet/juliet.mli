(** Synthetic Juliet-style test suite for the functional evaluation
    (paper §5.1).

    NIST Juliet 1.3 itself is C source and cannot be compiled here, so we
    generate the equivalent experiment: for every combination of defect
    kind (buffer overflow / underwrite / overread / underread /
    intra-object overflow), object placement (stack / heap) and data-flow
    variant (direct index, loop bound, pointer arithmetic, access through
    a callee, access through a global pointer — mirroring Juliet's flow
    variants), a {e good} program that stays in bounds and a {e bad}
    program whose only difference is the out-of-bounds access.

    The experimental question is the paper's: every bad case must trap
    under In-Fat Pointer, every good case must pass, and the baseline
    must stay silent on (almost all of) the bad cases. Intra-object cases
    additionally separate subobject granularity from object granularity:
    object-level schemes (and the no-promote control) cannot catch
    them. *)

type kind =
  | Overflow
  | Underwrite
  | Overread
  | Underread
  | Intra_object
  | Nested_intra
      (** intra-object overflow inside an array-of-struct element —
          exercises the recursive walker with element-base snapping *)
  | Use_after_free
  | Write_to_freed
  | Double_free
      (** temporal kinds (CWE-416/415) — only produced by
          {!temporal_cases}, never by {!all_cases} *)

type place = Stack | Heap

type flow =
  | Direct
  | Loop
  | Ptr_arith
  | Via_call
  | Via_global
  | Via_field
      (** pointer round-trips through a heap struct field (demote +
          promote), the heap analogue of [Via_global] *)

type case = {
  id : string;
  kind : kind;
  place : place;
  flow : flow;
  good : Ifp_compiler.Ir.program;
  bad : Ifp_compiler.Ir.program;
}

val kind_to_string : kind -> string
val place_to_string : place -> string
val flow_to_string : flow -> string

val all_cases : unit -> case list
(** The full cross product (72 cases: 6 kinds x 2 places x 6 flows),
    each with a good and a bad program. Spatial kinds only — the
    temporal families live in {!temporal_cases} so every existing
    spatial run (fig10, goldens) is unchanged. *)

val temporal_cases : unit -> case list
(** The temporal families (6 cases: use-after-free / write-to-freed /
    double-free, each via a heap field and via a global). The bad
    variant frees the buffer, churns the heap with a same-sized
    allocation (so a recycling allocator hands the chunk to a new
    object), then reloads the stale pointer from memory and uses it;
    the good variant is identical but frees after the use. Detection
    requires temporal mode ({!Ifp_vm.Vm.config}[.temporal]): a
    spatial-only configuration promotes the stale pointer against the
    churn object's valid metadata and stays silent. *)

type verdict = Detected | Silent | False_positive | Error of string

type outcome = {
  case : case;
  bad_verdict : verdict;  (** what happened on the bad program *)
  good_ok : bool;  (** the good program finished cleanly *)
}

val run_case : config:Ifp_vm.Vm.config -> case -> outcome

type summary = {
  total : int;
  detected : int;
  missed : int;
  false_positives : int;
  good_failures : int;
}

val run_all : config:Ifp_vm.Vm.config -> case list -> outcome list * summary

val run_all_with :
  run:(case -> [ `Good | `Bad ] -> Ifp_vm.Vm.result) ->
  case list ->
  outcome list * summary
(** Like {!run_all}, but the per-program results come from [run] — the
    hook the campaign engine uses to serve cached/parallel results while
    the verdict logic stays here. *)
