open Ifp_compiler.Ir
module Ctype = Ifp_types.Ctype
module Vm = Ifp_vm.Vm

type kind =
  | Overflow
  | Underwrite
  | Overread
  | Underread
  | Intra_object
  | Nested_intra
      (* intra-object overflow inside an array-of-struct element: only
         the recursive layout-table walk (Fig. 9c, with the element-base
         snapping division) can compute the right subobject bounds *)
  | Use_after_free
  | Write_to_freed
  | Double_free
      (* temporal kinds (CWE-416/415): the buffer pointer round-trips
         through memory, the object is freed, the heap is churned so a
         spatial-only design sees a valid-looking recycled allocation,
         and the stale pointer is then read / written / re-freed. Only
         in {!temporal_cases}, never in {!all_cases}. *)

type place = Stack | Heap

type flow =
  | Direct
  | Loop
  | Ptr_arith
  | Via_call
  | Via_global
  | Via_field
      (* the buffer pointer round-trips through a heap struct field:
         demoted on the store, promoted again on the reload *)

type case = {
  id : string;
  kind : kind;
  place : place;
  flow : flow;
  good : program;
  bad : program;
}

let kind_to_string = function
  | Overflow -> "overflow"
  | Underwrite -> "underwrite"
  | Overread -> "overread"
  | Underread -> "underread"
  | Intra_object -> "intra-object"
  | Nested_intra -> "nested-intra"
  | Use_after_free -> "use-after-free"
  | Write_to_freed -> "write-to-freed"
  | Double_free -> "double-free"

let place_to_string = function Stack -> "stack" | Heap -> "heap"

let flow_to_string = function
  | Direct -> "direct"
  | Loop -> "loop"
  | Ptr_arith -> "ptr-arith"
  | Via_call -> "via-call"
  | Via_global -> "via-global"
  | Via_field -> "via-field"

(* ------------------------------------------------------------------ *)

let n_elems = 12
let arr_ty = Ctype.Array (Ctype.I64, n_elems)
let jbuf_ty = Ctype.Struct "jbuf"

let inner_elems = 4
let inner_arr_ty = Ctype.Array (Ctype.I64, inner_elems)

let tenv =
  let t =
    Ctype.declare Ctype.empty_tenv
      {
        Ctype.sname = "jbuf";
        fields =
          [
            { fname = "data"; fty = arr_ty };
            { fname = "sentinel"; fty = Ctype.I64 };
          ];
      }
  in
  let t =
    Ctype.declare t
      {
        Ctype.sname = "jinner";
        fields =
          [
            { fname = "data"; fty = inner_arr_ty };
            { fname = "guard"; fty = Ctype.I64 };
          ];
      }
  in
  Ctype.declare t
    {
      Ctype.sname = "jnested";
      fields =
        [
          { fname = "pre"; fty = Ctype.I64 };
          { fname = "inner"; fty = Ctype.Array (Ctype.Struct "jinner", 3) };
          { fname = "post"; fty = Ctype.I64 };
        ];
    }

let tenv =
  Ctype.declare tenv
    {
      Ctype.sname = "jholder";
      fields = [ { fname = "p"; fty = Ctype.Ptr Ctype.I8 } ];
    }

let jholder_ty = Ctype.Struct "jholder"
let jnested_ty = Ctype.Struct "jnested"

let is_read = function
  | Overread | Underread | Use_after_free -> true
  | Overflow | Underwrite | Intra_object | Nested_intra | Write_to_freed
  | Double_free ->
    false

(* index values: read through an opaque global so no compile-time
   analysis can prove or disprove safety, as Juliet's flow variants do *)
let indices kind =
  match kind with
  | Overflow | Overread | Intra_object -> (5, n_elems)
  | Nested_intra -> (2, inner_elems) (* data[4] lands on the guard field *)
  | Underwrite | Underread -> (2, -1)
  | Use_after_free | Write_to_freed | Double_free ->
    (* temporal badness is when, not where: both variants index safely *)
    (5, 5)

(* object type: intra-object cases use the struct (the overflow stays
   inside the object and only subobject granularity can catch it) *)
let obj_ty kind =
  match kind with
  | Intra_object -> jbuf_ty
  | Nested_intra -> jnested_ty
  | _ -> arr_ty

(* an access to element [idx] of the buffer reached through [base] *)
let access kind base idx =
  let target =
    match kind with
    | Intra_object -> Gep (jbuf_ty, base, [ fld "data"; at idx ])
    | Nested_intra ->
      Gep (jnested_ty, base, [ fld "inner"; at (i 1); fld "data"; at idx ])
    | _ -> Gep (arr_ty, base, [ at idx ])
  in
  if is_read kind then
    [ Let ("sink", Ctype.I64, Load (Ctype.I64, target));
      Store_global ("gsink", Load_global "gsink" +: v "sink") ]
  else [ Store (Ctype.I64, target, i 7) ]

(* like [access] but usable in a callee (unique sink temp name) *)
let access_in tmp kind base idx =
  let target =
    match kind with
    | Intra_object -> Gep (jbuf_ty, base, [ fld "data"; at idx ])
    | Nested_intra ->
      Gep (jnested_ty, base, [ fld "inner"; at (i 1); fld "data"; at idx ])
    | _ -> Gep (arr_ty, base, [ at idx ])
  in
  if is_read kind then
    [ Let (tmp, Ctype.I64, Load (Ctype.I64, target));
      Store_global ("gsink", Load_global "gsink" +: v tmp) ]
  else [ Store (Ctype.I64, target, i 7) ]

let build_program kind place flow ~bad =
  let ty = obj_ty kind in
  let tp = Ctype.Ptr ty in
  let good_idx, bad_idx = indices kind in
  let idx_value = if bad then bad_idx else good_idx in
  let gidx = global "gidx" Ctype.I64 in
  let gsink = global "gsink" Ctype.I64 in
  (* pointer type stored in the global for the Via_global flow: for
     intra-object cases the *subobject* pointer round-trips through
     memory, exercising promote's layout-table narrowing *)
  let gptr_ty =
    match kind with
    | Intra_object -> Ctype.Ptr arr_ty
    | Nested_intra -> Ctype.Ptr inner_arr_ty
    | _ -> tp
  in
  let worker_arr_ty =
    match kind with Nested_intra -> inner_arr_ty | _ -> arr_ty
  in
  let gptr = global "gptr" gptr_ty in
  let touch = func "touch" [ ("p", tp) ] Ctype.Void [ Return None ] in
  let for_ var ~from ~below body =
    [ Let (var, Ctype.I64, from);
      While (v var <: below, body @ [ Assign (var, v var +: i 1) ]) ]
  in
  let init_elems base =
    (* initialise the legal elements so reads are deterministic *)
    match kind with
    | Nested_intra ->
      for_ "ini" ~from:(i 0) ~below:(i inner_elems)
        [
          Store (Ctype.I64,
                 Gep (jnested_ty, base, [ fld "inner"; at (i 1); fld "data"; at (v "ini") ]),
                 v "ini");
        ]
    | Intra_object ->
      for_ "ini" ~from:(i 0) ~below:(i n_elems)
        [ Store (Ctype.I64, Gep (jbuf_ty, base, [ fld "data"; at (v "ini") ]), v "ini") ]
    | _ ->
      for_ "ini" ~from:(i 0) ~below:(i n_elems)
        [ Store (Ctype.I64, Gep (arr_ty, base, [ at (v "ini") ]), v "ini") ]
  in
  let base_expr_main = v "bufp" in
  let alloc_stmts =
    match place with
    | Stack ->
      [
        (* an adjacent victim local above the buffer, so the baseline
           overflow corrupts it silently instead of faulting at the top
           of the stack (the classic Juliet frame layout) *)
        Decl_local ("victim", arr_ty);
        Expr (Call ("touch", [ Cast (tp, Addr_local "victim") ]));
        Decl_local ("buf", ty);
        Expr (Call ("touch", [ Addr_local "buf" ]));
        Let ("bufp", tp, Addr_local "buf");
      ]
    | Heap -> [ Let ("bufp", tp, Malloc (ty, i 1)) ]
  in
  let idx = Load_global "gidx" in
  let funcs, site_stmts =
    match flow with
    | Direct -> ([], access kind base_expr_main idx)
    | Loop ->
      (* the loop bound comes from the opaque global; the bad variant
         walks one element too far (or starts one too early) *)
      let body k = access kind base_expr_main (v k) in
      ( [],
        if is_read kind && kind = Underread then
          [
            Let ("k", Ctype.I64, idx);
            While (v "k" <: i 3, body "k" @ [ Assign ("k", v "k" +: i 1) ]);
          ]
        else if kind = Underwrite then
          [
            Let ("k", Ctype.I64, idx);
            While (v "k" <: i 3, body "k" @ [ Assign ("k", v "k" +: i 1) ]);
          ]
        else
          [
            Let ("k", Ctype.I64, i 0);
            While (v "k" <=: idx, body "k" @ [ Assign ("k", v "k" +: i 1) ]);
          ] )
    | Ptr_arith ->
      (* derive an element pointer, move it with pointer arithmetic *)
      let elem0 =
        match kind with
        | Intra_object -> Gep (jbuf_ty, base_expr_main, [ fld "data"; at (i 0) ])
        | Nested_intra ->
          Gep (jnested_ty, base_expr_main,
               [ fld "inner"; at (i 1); fld "data"; at (i 0) ])
        | _ -> Gep (arr_ty, base_expr_main, [ at (i 0) ])
      in
      let stmts =
        [ Let ("q", Ctype.Ptr Ctype.I64, elem0);
          Let ("q2", Ctype.Ptr Ctype.I64, Gep (Ctype.I64, v "q", [ at idx ])) ]
        @
        if is_read kind then
          [ Let ("sink", Ctype.I64, Load (Ctype.I64, v "q2"));
            Store_global ("gsink", Load_global "gsink" +: v "sink") ]
        else [ Store (Ctype.I64, v "q2", i 7) ]
      in
      ([], stmts)
    | Via_call ->
      let worker =
        func "worker" [ ("p", tp) ] Ctype.Void
          (access_in "wsink" kind (v "p") (Load_global "gidx") @ [ Return None ])
      in
      ([ worker ], [ Expr (Call ("worker", [ base_expr_main ])) ])
    | Via_field ->
      (* store the (subobject) pointer into a heap holder's field, then a
         worker reloads it — bounds are dropped at the store (demote) and
         must be recovered by promote on the load *)
      let stored_expr =
        match kind with
        | Intra_object -> Gep (jbuf_ty, base_expr_main, [ fld "data" ])
        | Nested_intra ->
          Gep (jnested_ty, base_expr_main, [ fld "inner"; at (i 1); fld "data" ])
        | _ -> base_expr_main
      in
      let worker =
        func "worker" [ ("h", Ctype.Ptr jholder_ty) ] Ctype.Void
          (let q =
             Let ("q", gptr_ty,
                  Cast (gptr_ty,
                        Load (Ctype.Ptr Ctype.I8,
                              Gep (jholder_ty, v "h", [ fld "p" ]))))
           in
           let acc =
             if is_read kind then
               [ Let ("wsink", Ctype.I64,
                      Load (Ctype.I64,
                            Gep (worker_arr_ty, v "q", [ at (Load_global "gidx") ])));
                 Store_global ("gsink", Load_global "gsink" +: v "wsink") ]
             else
               [ Store (Ctype.I64,
                        Gep (worker_arr_ty, v "q", [ at (Load_global "gidx") ]), i 7) ]
           in
           (q :: acc) @ [ Return None ])
      in
      ( [ worker ],
        [
          Let ("holder", Ctype.Ptr jholder_ty, Malloc (jholder_ty, i 1));
          Store (Ctype.Ptr Ctype.I8,
                 Gep (jholder_ty, v "holder", [ fld "p" ]),
                 Cast (Ctype.Ptr Ctype.I8, stored_expr));
          Expr (Call ("worker", [ v "holder" ]));
        ] )
    | Via_global ->
      let stored_expr =
        match kind with
        | Intra_object -> Gep (jbuf_ty, base_expr_main, [ fld "data" ])
        | Nested_intra ->
          Gep (jnested_ty, base_expr_main, [ fld "inner"; at (i 1); fld "data" ])
        | _ -> base_expr_main
      in
      let worker =
        func "worker" [] Ctype.Void
          (let q = Let ("q", gptr_ty, Load_global "gptr") in
           let acc =
             if is_read kind then
               [ Let ("wsink", Ctype.I64,
                      Load (Ctype.I64,
                            Gep (worker_arr_ty, v "q", [ at (Load_global "gidx") ])));
                 Store_global ("gsink", Load_global "gsink" +: v "wsink") ]
             else
               [ Store (Ctype.I64,
                        Gep (worker_arr_ty, v "q", [ at (Load_global "gidx") ]), i 7) ]
           in
           (q :: acc) @ [ Return None ])
      in
      ( [ worker ],
        [ Store_global ("gptr", stored_expr); Expr (Call ("worker", [])) ] )
  in
  let main =
    func "main" [] Ctype.I64
      ([ Store_global ("gidx", i idx_value) ]
      @ alloc_stmts @ init_elems base_expr_main @ site_stmts
      @ [ Return (Some (Load_global "gsink")) ])
  in
  program ~tenv ~globals:[ gidx; gsink; gptr ] (touch :: funcs @ [ main ])

(* Via_global with a non-array object type loads the object pointer, but
   the worker indexes it as an array — for the plain-array kinds gptr_ty
   is already Ptr arr_ty, so the Gep in the worker is well-typed for
   every kind. *)

(* ---- temporal families (CWE-416 use-after-free, CWE-415 double free,
   write-to-freed) ----------------------------------------------------

   Shape: the buffer pointer is parked in memory (heap holder field or
   global) while still live, the object is freed, and a same-sized churn
   allocation recycles its chunk — under a spatial-only design the stale
   pointer then promotes against the churn object's perfectly valid
   metadata, so the use is silent (the classic temporal hole). The stale
   pointer is always *reloaded from memory* before use: promote is the
   temporal checkpoint, and a register-resident stale pointer is the
   design's documented blind spot, so these families only exercise the
   flows the hardware claims to cover. The [bad] variant frees before
   the use; the [good] variant is identical but frees (once) after. *)
let build_temporal_program kind flow ~bad =
  let tp = Ctype.Ptr arr_ty in
  let gidx = global "gidx" Ctype.I64 in
  let gsink = global "gsink" Ctype.I64 in
  let gptr = global "gptr" tp in
  let for_ var ~below body =
    [ Let (var, Ctype.I64, i 0);
      While (v var <: below, body @ [ Assign (var, v var +: i 1) ]) ]
  in
  let init base bump =
    for_ "ini" ~below:(i n_elems)
      [ Store (Ctype.I64, Gep (arr_ty, base, [ at (v "ini") ]),
               v "ini" +: i bump) ]
  in
  let use_stmts q =
    match kind with
    | Use_after_free ->
      [ Let ("wsink", Ctype.I64,
             Load (Ctype.I64, Gep (arr_ty, q, [ at (Load_global "gidx") ])));
        Store_global ("gsink", Load_global "gsink" +: v "wsink") ]
    | Write_to_freed ->
      [ Store (Ctype.I64, Gep (arr_ty, q, [ at (Load_global "gidx") ]), i 7) ]
    | Double_free -> [ Free q ]
    | _ -> assert false
  in
  let worker, park_stmts, call_stmt =
    match flow with
    | Via_field ->
      ( func "worker" [ ("h", Ctype.Ptr jholder_ty) ] Ctype.Void
          (Let ("q", tp,
                Cast (tp,
                      Load (Ctype.Ptr Ctype.I8,
                            Gep (jholder_ty, v "h", [ fld "p" ]))))
           :: use_stmts (v "q")
          @ [ Return None ]),
        [ Let ("holder", Ctype.Ptr jholder_ty, Malloc (jholder_ty, i 1));
          Store (Ctype.Ptr Ctype.I8,
                 Gep (jholder_ty, v "holder", [ fld "p" ]),
                 Cast (Ctype.Ptr Ctype.I8, v "bufp")) ],
        Expr (Call ("worker", [ v "holder" ])) )
    | Via_global ->
      ( func "worker" [] Ctype.Void
          (Let ("q", tp, Load_global "gptr")
           :: use_stmts (v "q")
          @ [ Return None ]),
        [ Store_global ("gptr", v "bufp") ],
        Expr (Call ("worker", [])) )
    | _ -> assert false
  in
  let main =
    func "main" [] Ctype.I64
      (List.concat
         [
           [ Store_global ("gidx", i 5);
             Let ("bufp", tp, Malloc (arr_ty, i 1)) ];
           park_stmts;
           init (v "bufp") 0;
           (if bad then [ Free (v "bufp") ] else []);
           (* same-sized churn: under a recycling allocator it takes over
              the freed chunk, so the stale use has live data to corrupt
              or leak instead of faulting on unmapped memory *)
           [ Let ("churn", tp, Malloc (arr_ty, i 1)) ];
           init (v "churn") 100;
           [ call_stmt ];
           (match kind with
           | Double_free -> []
           | _ -> if bad then [] else [ Free (v "bufp") ]);
           [ Return (Some (Load_global "gsink")) ];
         ])
  in
  program ~tenv ~globals:[ gidx; gsink; gptr ] [ worker; main ]

let temporal_cases () =
  let kinds = [ Use_after_free; Write_to_freed; Double_free ] in
  let flows = [ Via_field; Via_global ] in
  List.concat_map
    (fun kind ->
      List.map
        (fun flow ->
          let id =
            Printf.sprintf "%s-heap-%s" (kind_to_string kind)
              (flow_to_string flow)
          in
          {
            id;
            kind;
            place = Heap;
            flow;
            good = build_temporal_program kind flow ~bad:false;
            bad = build_temporal_program kind flow ~bad:true;
          })
        flows)
    kinds

let all_cases () =
  let kinds =
    [ Overflow; Underwrite; Overread; Underread; Intra_object; Nested_intra ]
  in
  let places = [ Stack; Heap ] in
  let flows = [ Direct; Loop; Ptr_arith; Via_call; Via_global; Via_field ] in
  List.concat_map
    (fun kind ->
      List.concat_map
        (fun place ->
          List.map
            (fun flow ->
              let id =
                Printf.sprintf "%s-%s-%s" (kind_to_string kind)
                  (place_to_string place) (flow_to_string flow)
              in
              {
                id;
                kind;
                place;
                flow;
                good = build_program kind place flow ~bad:false;
                bad = build_program kind place flow ~bad:true;
              })
            flows)
        places)
    kinds

(* ------------------------------------------------------------------ *)

type verdict = Detected | Silent | False_positive | Error of string

type outcome = { case : case; bad_verdict : verdict; good_ok : bool }

let outcome_of_results case ~bad ~good =
  let bad_verdict =
    match bad.Vm.outcome with
    | Vm.Trapped _ -> Detected
    | Vm.Finished _ -> Silent
    | Vm.Aborted m -> Error (Vm.abort_reason_string m)
  in
  let good_ok =
    match good.Vm.outcome with
    | Vm.Finished _ -> true
    | Vm.Trapped _ | Vm.Aborted _ -> false
  in
  { case; bad_verdict; good_ok }

let run_case ~config case =
  let run p = Vm.run ~config p in
  outcome_of_results case ~bad:(run case.bad) ~good:(run case.good)

type summary = {
  total : int;
  detected : int;
  missed : int;
  false_positives : int;
  good_failures : int;
}

let summarize outcomes =
  let summary =
    List.fold_left
      (fun s o ->
        {
          total = s.total + 1;
          detected = (s.detected + match o.bad_verdict with Detected -> 1 | _ -> 0);
          missed = (s.missed + match o.bad_verdict with Silent -> 1 | _ -> 0);
          false_positives = s.false_positives + (if o.good_ok then 0 else 1);
          good_failures = s.good_failures + (if o.good_ok then 0 else 1);
        })
      { total = 0; detected = 0; missed = 0; false_positives = 0; good_failures = 0 }
      outcomes
  in
  (outcomes, summary)

let run_all_with ~run cases =
  summarize
    (List.map
       (fun case ->
         outcome_of_results case ~bad:(run case `Bad) ~good:(run case `Good))
       cases)

let run_all ~config cases = summarize (List.map (run_case ~config) cases)
