(* Shared VM runtime: the execution substrate both engines run on.

   Everything here is engine-independent — configuration, the machine
   state record, cost charging, checked memory access, promote, local
   object registration, program setup and the run scaffolding. {!Vm}
   (the slot-resolved interpreter) and {!Vm_closure} (the
   closure-compiled engine) are thin recursion strategies over these
   primitives; keeping the primitives in one module is what makes the
   engines bit-identical on every counter by construction rather than
   by parallel maintenance.

   This module deliberately has no [.mli]: it is the internal widest
   interface of the [ifp_vm] library. The supported public surface is
   {!Vm}'s. *)

module Ctype = Ifp_types.Ctype
module Memory = Ifp_machine.Memory
module Cache = Ifp_machine.Cache
module Tag = Ifp_isa.Tag
module Bounds = Ifp_isa.Bounds
module Insn = Ifp_isa.Insn
module Trap = Ifp_isa.Trap
module Meta = Ifp_metadata.Meta
module Promote = Ifp_metadata.Promote
module Alloc = Ifp_alloc.Alloc_intf
module Ir = Ifp_compiler.Ir
module Typecheck = Ifp_compiler.Typecheck
module Instrument = Ifp_compiler.Instrument
module R = Ifp_compiler.Resolve
module Fault = Ifp_faultinject.Fault

type variant = Baseline | Ifp | Ifp_no_promote

type alloc_kind = Alloc_baseline | Alloc_wrapped | Alloc_subheap | Alloc_mixed

(* Engines are observationally identical (outcome, counters, traces,
   output), differing only in host-side execution strategy — which is
   why [engine] is deliberately excluded from campaign job fingerprints:
   a cached result is valid whichever engine produced it. *)
type engine = Eng_vm | Eng_ref | Eng_closure

type config = {
  variant : variant;
  alloc : alloc_kind;
  seed : int64;
  max_cycles : int;
  narrowing : bool;
  infer_alloc_types : bool;
  trace_limit : int;
  fault_plan : Fault.plan option;
  engine : engine;
  temporal : bool;
      (* free-epoch generations (off by default): metadata records carry
         a generation and freed flag mirrored into the pointer tag, frees
         quarantine instead of recycling, and stale accesses trap with
         temporal causes. With it off every encoding, cost and output is
         bit-identical to the spatial-only design. *)
}

type trace_event =
  | T_promote of { ptr : int64; outcome : string; bounds : string }
  | T_register of { what : string; ptr : int64; size : int }
  | T_deregister of { what : string; ptr : int64 }
  | T_trap of string

let default_config =
  {
    variant = Baseline;
    alloc = Alloc_baseline;
    seed = 42L;
    max_cycles = 4_000_000_000;
    narrowing = true;
    infer_alloc_types = false;
    trace_limit = 0;
    fault_plan = None;
    engine = Eng_vm;
    temporal = false;
  }

let baseline = default_config
let ifp_wrapped = { default_config with variant = Ifp; alloc = Alloc_wrapped }
let ifp_subheap = { default_config with variant = Ifp; alloc = Alloc_subheap }
let no_promote alloc = { default_config with variant = Ifp_no_promote; alloc }

let no_narrowing alloc =
  { default_config with variant = Ifp; alloc; narrowing = false }

let ifp_mixed = { default_config with variant = Ifp; alloc = Alloc_mixed }

type abort_reason =
  | Budget_exhausted
  | Stack_overflow
  | Out_of_memory of string
  | Program_error of string
  | Host_failure of string

let abort_reason_string = function
  | Budget_exhausted -> "cycle budget exceeded"
  | Stack_overflow -> "stack overflow"
  | Out_of_memory m -> "OOM: " ^ m
  | Program_error m -> m
  | Host_failure m -> m

type outcome = Finished of int64 | Trapped of Trap.t | Aborted of abort_reason

type result = {
  outcome : outcome;
  counters : Counters.t;
  alloc_stats : Alloc.stats;
  alloc_extra : (string * int) list;
  cache_accesses : int;
  cache_misses : int;
  mem_footprint : int;
  output : string list;
  instrument_report : Instrument.report option;
  trace : trace_event list;  (** first [trace_limit] IFP events, in order *)
  fault_injections : string list;
      (** corruptions performed by the armed fault injector, in order;
          always [[]] when [fault_plan = None] *)
}

(* ------------------------------------------------------------------ *)

type value = VI of int64 | VF of float | VP of int64 * Bounds.t

exception Return_exc of value
exception Break_exc
exception Continue_exc
exception Abort of abort_reason

(* runtime-detected ill-formed IR or guest misuse *)
let abort msg = raise (Abort (Program_error msg))

(* Slot sentinels. [unbound] marks a variable slot whose Let never
   executed (reachable post-typecheck through a non-taken branch); it is
   detected by physical equality, so any VI a program computes — even
   with the same payload — is a distinct block and never mistaken for
   it. [local_unset] marks an undeclared stack-local slot; real local
   addresses are positive and below 2^48. *)
let unbound : value = VI 0x756E626F756E64L
let local_unset = Int64.min_int

(* shared immutable results for the hot paths; values are never mutated
   so sharing is invisible *)
let vi_zero = VI 0L
let vi_one = VI 1L
let null_ptr = VP (0L, Bounds.No_bounds)

let vi_bool b = if b then vi_one else vi_zero

type gobj = {
  gaddr : int64;
  gsize : int;
  mutable gtagged : int64;
  mutable gbounds : Bounds.t;
}

(* Frames are flat slot arrays: variable slots hold values directly,
   stack-local slots hold the decl-time address/size/type-id and the
   registration-tagged pointer. All indices were assigned by
   {!Ifp_compiler.Resolve}, so in-bounds by construction. *)
type frame = {
  vars : value array;
  local_addr : int64 array;  (* local_unset until the Decl_local runs *)
  local_tagged : int64 array;
  local_size : int array;
  local_tyid : int array;
  instrumented : bool;
  rf : R.func;  (* slot -> name tables for diagnostics *)
}

type state = {
  cfg : config;
  rp : R.program;
  tenv : Ctype.tenv;
  mem : Memory.t;
  cache : Cache.t;
  meta : Meta.t option;
  allocator : Alloc.t;
  c : Counters.t;
  globals : gobj array;  (* parallel to rp.globals *)
  layout_ptrs : int64 array;
      (* per-run interned-layout cache indexed by R type id; -1 = unset.
         Meta.intern_layout is idempotent per Meta instance, so caching
         its result is observationally transparent. *)
  inj : Fault.t option;
  mutable sp : int64;
  stack_limit : int64;
  mutable out : string list;
  mutable trace : trace_event list; (* reversed *)
  mutable trace_left : int;
}

let ifp_mode st = st.cfg.variant <> Baseline

(* Call sites guard on [trace_left] before building the event so the
   common tracing-off run allocates nothing. *)
let trace_add st ev =
  st.trace_left <- st.trace_left - 1;
  st.trace <- ev :: st.trace

let trace st ev = if st.trace_left > 0 then trace_add st (ev st)

(* ---- cost charging ------------------------------------------------ *)

let budget_check st =
  if st.c.cycles > st.cfg.max_cycles then raise (Abort Budget_exhausted)

let base st n =
  st.c.base_instrs <- st.c.base_instrs + n;
  st.c.cycles <- st.c.cycles + n

let cycles st n = st.c.cycles <- st.c.cycles + n

let charge_ifp st k n =
  Counters.add_ifp st.c k n;
  st.c.cycles <- st.c.cycles + (n * Cost.ifp_cycles k)

let mem_cycles st addr bytes kind =
  let misses = Cache.access_range st.cache addr ~bytes kind in
  st.c.cycles <- st.c.cycles + Cost.mem + (misses * Cost.miss_penalty)

let charge_load st addr bytes =
  st.c.loads <- st.c.loads + 1;
  base st 1;
  mem_cycles st addr bytes Cache.Load

let charge_store st addr bytes =
  st.c.stores <- st.c.stores + 1;
  base st 1;
  mem_cycles st addr bytes Cache.Store

let replay_touches st touches =
  List.iter (fun (addr, bytes) -> mem_cycles st addr bytes Cache.Store) touches

let charge_alloc_cost st (c : Alloc.cost) =
  base st c.instrs;
  List.iter (fun (k, n) -> charge_ifp st k n) c.ifp_instrs;
  replay_touches st c.touches

(* ---- value helpers ------------------------------------------------ *)

let as_int = function
  | VI x -> x
  | VP (w, _) -> w
  | VF f -> Int64.of_float f

let as_float = function VF f -> f | VI x -> Int64.to_float x | VP (w, _) -> Int64.to_float w

let as_ptr = function
  | VP (w, b) -> (w, b)
  | VI w -> (w, Bounds.no_bounds)
  | VF _ -> abort "float used as pointer"

let truth v = if Int64.equal (as_int v) 0L then false else true

let sext v bytes =
  match bytes with
  | 8 -> v
  | n ->
    let shift = 64 - (n * 8) in
    Int64.shift_right (Int64.shift_left v shift) shift

(* Per-run layout pointer for a resolve-assigned type id: intern on
   first use, then serve from the flat cache. *)
let layout_ptr_of st tyid =
  let p = st.layout_ptrs.(tyid) in
  if not (Int64.equal p (-1L)) then p
  else begin
    let meta = match st.meta with Some m -> m | None -> assert false in
    let p = Meta.intern_layout meta st.tenv st.rp.types.(tyid) in
    st.layout_ptrs.(tyid) <- p;
    p
  end

(* ---- memory access with protection semantics ---------------------- *)

let checked_access st frame ptr bounds ~size ~is_store =
  if ifp_mode st && frame.instrumented then begin
    if st.cfg.temporal then Insn.load_store_poison_check_temporal ptr ~is_store
    else Insn.load_store_poison_check ptr;
    st.c.implicit_checks <- st.c.implicit_checks + 1;
    match bounds with
    | Bounds.No_bounds -> ()
    | Bounds.Bounds { lo; hi } ->
      if not (Bounds.contains bounds ~addr:(Tag.addr ptr) ~size) then
        Trap.raise_trap (Trap.Bounds_violation { ptr; lo; hi; size })
  end

(* fault-injection hook: [None] in every ordinary run, so the only cost
   when off is this match *)
let injected_bounds st w b ~size =
  match st.inj with
  | None -> b
  | Some inj -> Fault.on_access inj ~addr:(Tag.addr w) ~size ~bounds:b

let do_load st frame cls bytes addrv =
  let w, b = as_ptr addrv in
  let b = injected_bounds st w b ~size:bytes in
  checked_access st frame w b ~size:bytes ~is_store:false;
  let a = Tag.addr w in
  charge_load st a bytes;
  match Memory.read_size st.mem a ~bytes with
  | raw -> (
    match cls with
    | R.Cls_ptr -> VP (raw, Bounds.no_bounds)
    | R.Cls_f64 -> VF (Int64.float_of_bits raw)
    | R.Cls_int -> VI (sext raw bytes))
  | exception Memory.Fault (_, fa) -> Trap.raise_trap (Trap.Memory_fault fa)

(* raw bits a value stores as, under a scalar class. For pointer slots
   the demote path applies: the tagged word goes to memory, the bounds
   register is dropped, ifpextract refreshes poison bits. *)
let store_raw st frame cls v =
  match (cls, v) with
  | R.Cls_f64, _ -> Int64.bits_of_float (as_float v)
  | R.Cls_ptr, VP (pw, pb) ->
    if ifp_mode st && frame.instrumented && pb <> Bounds.No_bounds then begin
      charge_ifp st Insn.Ifpextract 1;
      Insn.ifpextract pw ~bounds:pb
    end
    else pw
  | _, v -> as_int v

let do_store st frame cls bytes addrv v =
  let w, b = as_ptr addrv in
  let b = injected_bounds st w b ~size:bytes in
  checked_access st frame w b ~size:bytes ~is_store:true;
  let a = Tag.addr w in
  let raw = store_raw st frame cls v in
  charge_store st a bytes;
  match Memory.write_size st.mem a ~bytes raw with
  | () -> ()
  | exception Memory.Fault (_, fa) -> Trap.raise_trap (Trap.Memory_fault fa)

let do_load_int st frame bytes addrv =
  let w, b =
    match addrv with
    | VP (w, b) -> (w, b)
    | VI w -> (w, Bounds.no_bounds)
    | VF _ -> abort "float used as pointer"
  in
  let b = injected_bounds st w b ~size:bytes in
  checked_access st frame w b ~size:bytes ~is_store:false;
  let a = Tag.addr w in
  charge_load st a bytes;
  match Memory.read_size st.mem a ~bytes with
  | raw -> sext raw bytes
  | exception Memory.Fault (_, fa) -> Trap.raise_trap (Trap.Memory_fault fa)

(* Integer store with the raw word already computed: what [do_store]
   does for [Cls_int] (whose raw computation has no observable
   effects), minus the value round-trip. *)
let do_store_int st frame bytes addrv raw =
  let w, b =
    match addrv with
    | VP (w, b) -> (w, b)
    | VI w -> (w, Bounds.no_bounds)
    | VF _ -> abort "float used as pointer"
  in
  let b = injected_bounds st w b ~size:bytes in
  checked_access st frame w b ~size:bytes ~is_store:true;
  let a = Tag.addr w in
  charge_store st a bytes;
  match Memory.write_size st.mem a ~bytes raw with
  | () -> ()
  | exception Memory.Fault (_, fa) -> Trap.raise_trap (Trap.Memory_fault fa)

(* ---- promote -------------------------------------------------------- *)

let eval_promote st v =
  let w, b = as_ptr v in
  let w = match st.inj with Some inj -> Fault.on_promote inj w | None -> w in
  match st.cfg.variant with
  | Baseline -> v
  | Ifp_no_promote ->
    charge_ifp st Insn.Promote 1;
    VP (w, Bounds.no_bounds)
  | Ifp ->
    charge_ifp st Insn.Promote 1;
    ignore b;
    (match Tag.subobj_index w with
    | Some i when i > 0 -> st.c.promotes_subobj <- st.c.promotes_subobj + 1
    | Some _ | None -> ());
    let meta = match st.meta with Some m -> m | None -> assert false in
    let r = Promote.run ~narrow:st.cfg.narrowing meta w in
    List.iter
      (fun { Meta.addr; bytes } -> mem_cycles st addr bytes Cache.Load)
      r.fetches;
    cycles st
      ((r.walk_elems * Cost.walk_per_elem)
      + (r.divisions * Cost.div)
      + (r.mac_checks * Cost.mac_check));
    if st.trace_left > 0 then
      trace_add st
        (T_promote
          {
            ptr = w;
            outcome =
              (match r.Promote.outcome with
              | Promote.Bypass_poisoned -> "bypass:poisoned"
              | Promote.Bypass_null -> "bypass:null"
              | Promote.Bypass_legacy -> "bypass:legacy"
              | Promote.Metadata_invalid m -> "invalid:" ^ m
              | Promote.Temporal_stale { freed; gen_ptr; gen_meta } ->
                Printf.sprintf "temporal-stale:%s:g%d/g%d"
                  (if freed then "freed" else "recycled")
                  gen_ptr gen_meta
              | Promote.Retrieved Promote.No_subobject -> "retrieved"
              | Promote.Retrieved Promote.Narrowed -> "retrieved:narrowed"
              | Promote.Retrieved (Promote.Narrow_failed m) ->
                "retrieved:narrow-failed:" ^ m);
            bounds = Format.asprintf "%a" Bounds.pp r.Promote.bounds;
          });
    (* Adversarial mode: with a fault injector armed, an invalid-metadata
       promote traps architecturally (the paper's §3.3 MAC-mismatch trap)
       instead of deferring detection to the poisoned dereference — this
       is the configuration whose trap paths the fault campaign measures.
       Ordinary runs keep the deferred-poison semantics unchanged. *)
    (match (r.outcome, st.inj) with
    | Promote.Metadata_invalid reason, Some _ ->
      st.c.promotes_invalid_meta <- st.c.promotes_invalid_meta + 1;
      if String.equal reason "MAC mismatch" then
        Trap.raise_trap (Trap.Mac_mismatch { ptr = w })
      else Trap.raise_trap (Trap.Invalid_metadata { ptr = w; reason })
    | Promote.Temporal_stale _, Some _ ->
      (* armed temporal promote traps immediately instead of deferring
         to the poisoned dereference — same escalation as the MAC path *)
      st.c.promotes_invalid_meta <- st.c.promotes_invalid_meta + 1;
      Trap.raise_trap (Trap.Use_after_free { ptr = w })
    | _ -> ());
    (match r.outcome with
    | Promote.Bypass_poisoned -> st.c.promotes_poisoned <- st.c.promotes_poisoned + 1
    | Promote.Bypass_null -> st.c.promotes_null <- st.c.promotes_null + 1
    | Promote.Bypass_legacy -> st.c.promotes_legacy <- st.c.promotes_legacy + 1
    | Promote.Metadata_invalid _ | Promote.Temporal_stale _ ->
      st.c.promotes_invalid_meta <- st.c.promotes_invalid_meta + 1
    | Promote.Retrieved status ->
      st.c.promotes_valid <- st.c.promotes_valid + 1;
      (match status with
      | Promote.Narrowed -> st.c.narrows_ok <- st.c.narrows_ok + 1
      | Promote.Narrow_failed _ -> st.c.narrows_failed <- st.c.narrows_failed + 1
      | Promote.No_subobject -> ()));
    VP (r.ptr, r.bounds)

(* ---- local object registration -------------------------------------- *)

(* Registration with the layout pointer already resolved: the closure
   engine feeds this from a per-site inline cache; the interpreter goes
   through {!register_local}, which resolves via the per-run tyid
   table. The split is observationally invisible — resolving the layout
   pointer is host-side work with no charges. *)
let register_local_lp st frame slot layout_ptr =
  let addr = frame.local_addr.(slot) in
  let meta = match st.meta with Some m -> m | None -> assert false in
  let size = frame.local_size.(slot) in
  let has_layout = not (Int64.equal layout_ptr 0L) in
  st.c.local_objs <- st.c.local_objs + 1;
  if has_layout then st.c.local_objs_layout <- st.c.local_objs_layout + 1;
  if st.trace_left > 0 then
    trace_add st
      (T_register
         { what = "local:" ^ frame.rf.local_names.(slot); ptr = addr; size });
  if Meta.Local_offset.fits ~size then begin
    let p = Meta.Local_offset.register meta ~base:addr ~size ~layout_ptr in
    frame.local_tagged.(slot) <- p;
    base st 6;
    charge_ifp st Insn.Ifpmac 1;
    charge_ifp st Insn.Ifpmd 1;
    replay_touches st [ (Tag.metadata_addr_local_offset p, 16) ]
  end
  else
    match Meta.Global_table.register meta ~base:addr ~size ~layout_ptr with
    | Some p ->
      frame.local_tagged.(slot) <- p;
      base st 50;
      charge_ifp st Insn.Ifpmd 1
    | None ->
      frame.local_tagged.(slot) <- addr;
      base st 20

let register_local st frame slot =
  let addr = frame.local_addr.(slot) in
  if Int64.equal addr local_unset then
    abort ("register of unknown local " ^ frame.rf.local_names.(slot))
  else
    register_local_lp st frame slot (layout_ptr_of st frame.local_tyid.(slot))

let deregister_local st frame slot =
  if Int64.equal frame.local_addr.(slot) local_unset then ()
  else begin
    let meta = match st.meta with Some m -> m | None -> assert false in
    let p = frame.local_tagged.(slot) in
    if st.trace_left > 0 then
      trace_add st
        (T_deregister { what = "local:" ^ frame.rf.local_names.(slot); ptr = p });
    match Tag.scheme p with
    | Tag.Local_offset ->
      if st.cfg.temporal then begin
        (* free-epoch transition: validate, bump generation, re-MAC.
           The record stays in place; reuse of the stack slot reads the
           prior generation back at register time. *)
        ignore (Meta.Local_offset.deregister_temporal meta p);
        base st 6;
        charge_ifp st Insn.Ifpmac 1
      end
      else begin
        Meta.Local_offset.deregister meta p;
        base st 4
      end;
      replay_touches st [ (Tag.metadata_addr_local_offset p, 16) ]
    | Tag.Global_table ->
      if st.cfg.temporal then
        ignore (Meta.Global_table.deregister_temporal meta p)
      else Meta.Global_table.deregister meta p;
      base st 30
    | Tag.Legacy | Tag.Subheap -> ()
  end

(* ---- frames, calls, shared expression tails ------------------------- *)

(* Shared zero-length arrays: a function with no stack locals (the
   common case) gets frames whose local tables are these never-written
   empties instead of four fresh allocations per call. *)
let empty_i64 : int64 array = [||]
let empty_int : int array = [||]
let empty_vals : value array = [||]

let make_frame (f : R.func) =
  if f.n_locals = 0 then
    {
      vars = (if f.n_vars = 0 then empty_vals else Array.make f.n_vars unbound);
      local_addr = empty_i64;
      local_tagged = empty_i64;
      local_size = empty_int;
      local_tyid = empty_int;
      instrumented = f.instrumented;
      rf = f;
    }
  else
    {
      vars = Array.make f.n_vars unbound;
      local_addr = Array.make f.n_locals local_unset;
      local_tagged = Array.make f.n_locals 0L;
      local_size = Array.make f.n_locals 0;
      local_tyid = Array.make f.n_locals 0;
      instrumented = f.instrumented;
      rf = f;
    }

let eval_binop st op a b =
  let int_op f =
    base st 1;
    VI (f (as_int a) (as_int b))
  in
  let cmp f =
    base st 1;
    let x, y =
      match (a, b) with
      | VP (wa, _), VP (wb, _) -> (Tag.addr wa, Tag.addr wb)
      | _ -> (as_int a, as_int b)
    in
    vi_bool (f (Int64.compare x y) 0)
  in
  let fop f =
    base st 1;
    cycles st (Cost.fp - 1);
    VF (f (as_float a) (as_float b))
  in
  let fcmp f =
    base st 1;
    cycles st (Cost.fp - 1);
    vi_bool (f (as_float a) (as_float b))
  in
  match op with
  | Ir.Add -> int_op Int64.add
  | Ir.Sub -> int_op Int64.sub
  | Ir.Mul ->
    cycles st (Cost.mul - 1);
    int_op Int64.mul
  | Ir.Div ->
    cycles st (Cost.div - 1);
    let d = as_int b in
    if Int64.equal d 0L then abort "division by zero";
    int_op Int64.div
  | Ir.Rem ->
    cycles st (Cost.div - 1);
    let d = as_int b in
    if Int64.equal d 0L then abort "remainder by zero";
    int_op Int64.rem
  | Ir.LAnd | Ir.LOr -> assert false (* short-circuit, handled in eval *)
  | Ir.BAnd -> int_op Int64.logand
  | Ir.BOr -> int_op Int64.logor
  | Ir.BXor -> int_op Int64.logxor
  | Ir.Shl -> int_op (fun x y -> Int64.shift_left x (Int64.to_int y land 63))
  | Ir.Shr -> int_op (fun x y -> Int64.shift_right_logical x (Int64.to_int y land 63))
  | Ir.Eq -> cmp ( = )
  | Ir.Ne -> cmp ( <> )
  | Ir.Lt -> cmp ( < )
  | Ir.Le -> cmp ( <= )
  | Ir.Gt -> cmp ( > )
  | Ir.Ge -> cmp ( >= )
  | Ir.FAdd -> fop ( +. )
  | Ir.FSub -> fop ( -. )
  | Ir.FMul -> fop ( *. )
  | Ir.FDiv -> fop ( /. )
  | Ir.FEq -> fcmp ( = )
  | Ir.FLt -> fcmp ( < )
  | Ir.FLe -> fcmp ( <= )

let eval_unop st op a =
  base st 1;
  match op with
  | Ir.Neg -> VI (Int64.neg (as_int a))
  | Ir.BNot -> VI (Int64.lognot (as_int a))
  | Ir.LNot -> vi_bool (Int64.equal (as_int a) 0L)
  | Ir.FNeg ->
    cycles st (Cost.fp - 1);
    VF (-.as_float a)
  | Ir.I2F ->
    cycles st (Cost.fp - 1);
    VF (Int64.to_float (as_int a))
  | Ir.F2I ->
    cycles st (Cost.fp - 1);
    VI (Int64.of_float (as_float a))

let gep_finish st frame w b idx_delta ~delta ~dyn ~nb_lo ~nb_hi ~have_nb =
  if ifp_mode st && frame.instrumented then begin
    let out_bounds =
      match b with
      | Bounds.No_bounds -> Bounds.no_bounds
      | _ -> if have_nb then Bounds.make ~lo:nb_lo ~hi:nb_hi else b
    in
    (* the muls for dynamic indexes stay ordinary ALU work; the final add
       becomes ifpadd (address + tag update) *)
    if dyn > 0 then begin
      st.c.base_instrs <- st.c.base_instrs + dyn;
      cycles st (dyn * Cost.mul)
    end;
    charge_ifp st Insn.Ifpadd 1;
    let w' = Insn.ifpadd w ~delta ~bounds:out_bounds in
    let w' =
      if idx_delta > 0 then begin
        charge_ifp st Insn.Ifpidx 1;
        Insn.ifpidx w' idx_delta
      end
      else w'
    in
    if not (Bounds.equal out_bounds b) then charge_ifp st Insn.Ifpbnd 1;
    VP (w', out_bounds)
  end
  else begin
    if dyn > 0 then begin
      st.c.base_instrs <- st.c.base_instrs + (dyn * 2);
      cycles st (dyn * (Cost.mul + Cost.alu))
    end;
    VP (Int64.add w delta, Bounds.no_bounds)
  end

let do_malloc st frame ~size ~cty ~layout_multi =
  let cty_for_alloc = if ifp_mode st && frame.instrumented then cty else None in
  let ptr, c = st.allocator.malloc ~size ~cty:cty_for_alloc in
  charge_alloc_cost st c;
  st.c.heap_objs <- st.c.heap_objs + 1;
  (match cty_for_alloc with
  | Some _ when layout_multi ->
    st.c.heap_objs_layout <- st.c.heap_objs_layout + 1
  | Some _ | None -> ());
  if ifp_mode st && frame.instrumented then begin
    charge_ifp st Insn.Ifpbnd 1;
    VP (ptr, Bounds.of_base_size (Tag.addr ptr) size)
  end
  else VP (ptr, Bounds.no_bounds)

let call_prelude st (f : R.func) n_args =
  budget_check st;
  (* call + ret + prologue/epilogue (ra/s-reg save, sp adjust) *)
  base st (6 + n_args);
  cycles st (Cost.call - 1);
  let spills =
    if ifp_mode st && f.instrumented && f.has_calls then min 4 f.ptr_regs
    else 0
  in
  if spills > 0 then charge_ifp st Insn.Stbnd spills;
  spills

let strip_bounds = function
  | VP (w, _) -> VP (w, Bounds.no_bounds)
  | v -> v

let coerce k v =
  match k with
  | R.K_i8 -> VI (sext (as_int v) 1)
  | R.K_i16 -> VI (sext (as_int v) 2)
  | R.K_i32 -> VI (sext (as_int v) 4)
  | R.K_i64 -> VI (as_int v)
  | R.K_f64 -> VF (as_float v)
  | R.K_ptr -> (
    match v with VP _ -> v | VI w -> VP (w, Bounds.no_bounds) | VF _ -> v)
  | R.K_other -> v

(* ---- program setup --------------------------------------------------- *)

let setup_globals st =
  let bump = ref Memmap.globals_base in
  Array.iteri
    (fun i (g : R.rglobal) ->
      let size = max 1 g.gsize in
      let footprint =
        if ifp_mode st then Meta.Local_offset.footprint ~size
        else Ifp_util.Bits.align_up size 16
      in
      let addr = Ifp_util.Bits.align_up64 !bump 16 in
      bump := Int64.add addr (Int64.of_int footprint);
      if
        Int64.compare !bump
          (Int64.add Memmap.globals_base (Int64.of_int Memmap.globals_size))
        > 0
      then abort "globals region exhausted";
      let go =
        { gaddr = addr; gsize = size; gtagged = addr; gbounds = Bounds.no_bounds }
      in
      (if ifp_mode st && g.gregistered then
         match st.meta with
         | None -> ()
         | Some meta ->
           let layout_ptr = Meta.intern_layout meta st.tenv g.gty in
           let has_layout = not (Int64.equal layout_ptr 0L) in
           st.c.global_objs <- st.c.global_objs + 1;
           if has_layout then
             st.c.global_objs_layout <- st.c.global_objs_layout + 1;
           base st 20;
           if Meta.Local_offset.fits ~size then begin
             go.gtagged <-
               Meta.Local_offset.register meta ~base:addr ~size ~layout_ptr;
             charge_ifp st Insn.Ifpmac 1
           end
           else
             match Meta.Global_table.register meta ~base:addr ~size ~layout_ptr with
             | Some p -> go.gtagged <- p
             | None -> ());
      go.gbounds <- Bounds.of_base_size addr size;
      st.globals.(i) <- go)
    st.rp.globals

(* ---- run scaffolding ------------------------------------------------- *)

(* Everything around the engine: typecheck, instrument, lower, build the
   machine, run globals setup, dispatch into the engine's [main_body]
   (which raises the usual control exceptions), and assemble the result.
   [main_body st frame f] must execute [f]'s body in [frame]; a normal
   return means main fell off the end. *)
let run_with ~(config : config) (raw_prog : Ir.program)
    ~(main_body : state -> frame -> R.func -> unit) =
  Typecheck.check_program raw_prog;
  let prog, report =
    match config.variant with
    | Baseline -> (raw_prog, None)
    | Ifp | Ifp_no_promote ->
      let p, r =
        Instrument.run
          ~config:{ Instrument.infer_alloc_types = config.infer_alloc_types }
          raw_prog
      in
      (p, Some r)
  in
  (* one-time lowering to slots; everything after runs hash-free *)
  let rp = R.run prog in
  let mem = Memory.create () in
  let cache = Cache.create () in
  (* map fixed regions *)
  Memory.map mem ~base:Memmap.globals_base ~size:Memmap.globals_size;
  Memory.map mem ~base:Memmap.layout_region_base ~size:Memmap.layout_region_size;
  Memory.map mem ~base:Memmap.global_table_base
    ~size:(Memmap.global_table_entries * 16);
  Memory.map mem
    ~base:(Int64.sub Memmap.stack_top (Int64.of_int Memmap.stack_size))
    ~size:Memmap.stack_size;
  let rng = Ifp_util.Prng.create config.seed in
  let meta =
    match config.variant with
    | Baseline -> None
    | Ifp | Ifp_no_promote ->
      Some
        (Meta.create ~temporal:config.temporal ~memory:mem
           ~mac_key:(Ifp_metadata.Mac.fresh_key rng)
           ~layout_region:(Memmap.layout_region_base, Memmap.layout_region_size)
           ~global_table:(Memmap.global_table_base, Memmap.global_table_entries)
           ())
  in
  let allocator =
    match (config.variant, config.alloc) with
    | Baseline, _ | _, Alloc_baseline ->
      Ifp_alloc.Baseline.create ~memory:mem ~base:Memmap.heap_base
        ~size:(1 lsl Memmap.heap_size_log2)
    | _, Alloc_wrapped ->
      let base_alloc =
        Ifp_alloc.Baseline.create ~memory:mem ~base:Memmap.heap_base
          ~size:(1 lsl Memmap.heap_size_log2)
      in
      let meta = Option.get meta in
      Ifp_alloc.Wrapped.create ~meta ~tenv:prog.tenv ~base_alloc
    | _, Alloc_subheap ->
      let meta = Option.get meta in
      Ifp_alloc.Subheap_alloc.create ~meta ~tenv:prog.tenv ~memory:mem
        ~base:Memmap.heap_base ~size_log2:Memmap.heap_size_log2
    | _, Alloc_mixed ->
      (* split the heap: buddy arena in the lower half (naturally aligned
         to its size), baseline/wrapped heap in the upper half *)
      let meta = Option.get meta in
      let half_log2 = Memmap.heap_size_log2 - 1 in
      let subheap =
        Ifp_alloc.Subheap_alloc.create ~meta ~tenv:prog.tenv ~memory:mem
          ~base:Memmap.heap_base ~size_log2:half_log2
      in
      let base_alloc =
        Ifp_alloc.Baseline.create ~memory:mem
          ~base:(Int64.add Memmap.heap_base (Int64.of_int (1 lsl half_log2)))
          ~size:(1 lsl half_log2)
      in
      let wrapped =
        Ifp_alloc.Wrapped.create ~meta ~tenv:prog.tenv ~base_alloc
      in
      Ifp_alloc.Mixed.create ~subheap ~wrapped
  in
  let inj =
    Option.map
      (fun plan -> Fault.create plan ~mem ~heap_base:Memmap.heap_base)
      config.fault_plan
  in
  (match (inj, meta) with
  | Some i, Some m -> Fault.attach_meta i m
  | _ -> ());
  let dummy_gobj =
    { gaddr = 0L; gsize = 0; gtagged = 0L; gbounds = Bounds.no_bounds }
  in
  let st =
    {
      cfg = config;
      rp;
      tenv = prog.tenv;
      mem;
      cache;
      meta;
      allocator;
      inj;
      c = Counters.create ();
      globals = Array.make (Array.length rp.globals) dummy_gobj;
      layout_ptrs = Array.make (Array.length rp.types) (-1L);
      sp = Memmap.stack_top;
      stack_limit = Int64.sub Memmap.stack_top (Int64.of_int Memmap.stack_size);
      out = [];
      trace = [];
      trace_left = config.trace_limit;
    }
  in
  let outcome =
    match setup_globals st with
    | () -> (
      if rp.main < 0 then Aborted (Program_error "no main function")
      else
        let mainf = rp.funcs.(rp.main) in
        let frame = make_frame mainf in
        match main_body st frame mainf with
        | () -> Finished 0L
        | exception Return_exc v -> Finished (as_int v)
        | exception Trap.Trap t ->
          st.trace_left <- max st.trace_left 1;
          trace st (fun _ -> T_trap (Trap.to_string t));
          Trapped t
        | exception Abort msg -> Aborted msg
        | exception Memory.Fault (_, a) -> Trapped (Trap.Memory_fault a)
        | exception Alloc.Out_of_memory msg -> Aborted (Out_of_memory msg)
        | exception Alloc.Double_free p ->
          (* allocator-level detection (baseline heap header check):
             modeled as the glibc-style abort, not an IFP trap *)
          Aborted
            (Program_error (Printf.sprintf "double free detected by allocator (0x%Lx)" p)))
    | exception Abort msg -> Aborted msg
  in
  let alloc_stats = st.allocator.stats () in
  let layout_bytes =
    match meta with Some m -> Meta.layout_bytes_used m | None -> 0
  in
  {
    outcome;
    counters = st.c;
    alloc_stats;
    alloc_extra = st.allocator.extra_stats ();
    cache_accesses = Cache.accesses cache;
    cache_misses = Cache.misses cache;
    mem_footprint = alloc_stats.footprint_bytes + layout_bytes;
    output = List.rev st.out;
    instrument_report = report;
    trace = List.rev st.trace;
    fault_injections =
      (match inj with Some i -> Fault.injections i | None -> []);
  }
