(* Reference interpreter: the name-keyed tree walker that predates the
   slot-resolution pass. Every variable access goes through a string
   Hashtbl and every size/offset/layout is recomputed per access.

   Kept verbatim so that (a) test_vm can differentially check that the
   slot-resolved Vm produces bit-identical counters, traces and output,
   and (b) bench/ifp_bench can report before/after host cost per
   simulated instruction. Do not "improve" this module — its value is
   being the unoptimised executable specification. *)

module Ctype = Ifp_types.Ctype
module Layout = Ifp_types.Layout
module Memory = Ifp_machine.Memory
module Cache = Ifp_machine.Cache
module Tag = Ifp_isa.Tag
module Bounds = Ifp_isa.Bounds
module Insn = Ifp_isa.Insn
module Trap = Ifp_isa.Trap
module Meta = Ifp_metadata.Meta
module Promote = Ifp_metadata.Promote
module Alloc = Ifp_alloc.Alloc_intf
module Ir = Ifp_compiler.Ir
module Typecheck = Ifp_compiler.Typecheck
module Instrument = Ifp_compiler.Instrument
module Fault = Ifp_faultinject.Fault

(* The public vocabulary (config, variants, outcomes, trace events,
   result) is Vm's: Vm_ref.run fulfils the same contract. *)
open Vm

(* ------------------------------------------------------------------ *)

type value = VI of int64 | VF of float | VP of int64 * Bounds.t

exception Return_exc of value
exception Break_exc
exception Continue_exc
exception Abort of abort_reason

(* runtime-detected ill-formed IR or guest misuse *)
let abort msg = raise (Abort (Program_error msg))

type gobj = {
  gaddr : int64;
  gsize : int;
  mutable gtagged : int64;
  mutable gbounds : Bounds.t;
}

type func_meta = { has_calls : bool; ptr_regs : int }

type frame = {
  vars : (string, value ref) Hashtbl.t;
  locals : (string, int64 * Ctype.t * int64 ref) Hashtbl.t;
      (* base addr, type, tagged pointer (mutable: set by registration) *)
  instrumented : bool;
}

type state = {
  cfg : config;
  prog : Ir.program;
  tenv : Ctype.tenv;
  mem : Memory.t;
  cache : Cache.t;
  meta : Meta.t option;
  allocator : Alloc.t;
  c : Counters.t;
  funcs : (string, Ir.func) Hashtbl.t;
  fmeta : (string, func_meta) Hashtbl.t;
  globals : (string, gobj) Hashtbl.t;
  layouts : (Ctype.t, Layout.t) Hashtbl.t;
  inj : Fault.t option;
  mutable sp : int64;
  stack_limit : int64;
  mutable out : string list;
  mutable trace : trace_event list; (* reversed *)
  mutable trace_left : int;
}

let ifp_mode st = st.cfg.variant <> Baseline

let trace st ev =
  if st.trace_left > 0 then begin
    st.trace_left <- st.trace_left - 1;
    st.trace <- ev st :: st.trace
  end

(* ---- cost charging ------------------------------------------------ *)

let budget_check st =
  if st.c.cycles > st.cfg.max_cycles then raise (Abort Budget_exhausted)

let base st n =
  st.c.base_instrs <- st.c.base_instrs + n;
  st.c.cycles <- st.c.cycles + n

let cycles st n = st.c.cycles <- st.c.cycles + n

let charge_ifp st k n =
  Counters.add_ifp st.c k n;
  st.c.cycles <- st.c.cycles + (n * Cost.ifp_cycles k)

let mem_cycles st addr bytes kind =
  let misses = Cache.access_range st.cache addr ~bytes kind in
  st.c.cycles <- st.c.cycles + Cost.mem + (misses * Cost.miss_penalty)

let charge_load st addr bytes =
  st.c.loads <- st.c.loads + 1;
  base st 1;
  mem_cycles st addr bytes Cache.Load

let charge_store st addr bytes =
  st.c.stores <- st.c.stores + 1;
  base st 1;
  mem_cycles st addr bytes Cache.Store

let replay_touches st touches =
  List.iter (fun (addr, bytes) -> mem_cycles st addr bytes Cache.Store) touches

let charge_alloc_cost st (c : Alloc.cost) =
  base st c.instrs;
  List.iter (fun (k, n) -> charge_ifp st k n) c.ifp_instrs;
  replay_touches st c.touches

(* ---- value helpers ------------------------------------------------ *)

let as_int = function
  | VI x -> x
  | VP (w, _) -> w
  | VF f -> Int64.of_float f

let as_float = function VF f -> f | VI x -> Int64.to_float x | VP (w, _) -> Int64.to_float w

let as_ptr = function
  | VP (w, b) -> (w, b)
  | VI w -> (w, Bounds.no_bounds)
  | VF _ -> abort "float used as pointer"

let truth v = if Int64.equal (as_int v) 0L then false else true

let sext v bytes =
  match bytes with
  | 8 -> v
  | n ->
    let shift = 64 - (n * 8) in
    Int64.shift_right (Int64.shift_left v shift) shift

let layout_of st ty =
  match Hashtbl.find_opt st.layouts ty with
  | Some l -> l
  | None ->
    let l = Layout.build st.tenv ty in
    Hashtbl.replace st.layouts ty l;
    l

(* ---- memory access with protection semantics ---------------------- *)

let checked_access st frame ptr bounds ~size ~is_store =
  if ifp_mode st && frame.instrumented then begin
    if st.cfg.temporal then Insn.load_store_poison_check_temporal ptr ~is_store
    else Insn.load_store_poison_check ptr;
    st.c.implicit_checks <- st.c.implicit_checks + 1;
    match bounds with
    | Bounds.No_bounds -> ()
    | Bounds.Bounds { lo; hi } ->
      if not (Bounds.contains bounds ~addr:(Tag.addr ptr) ~size) then
        Trap.raise_trap (Trap.Bounds_violation { ptr; lo; hi; size })
  end

(* fault-injection hook: [None] in every ordinary run, so the only cost
   when off is this match *)
let injected_bounds st w b ~size =
  match st.inj with
  | None -> b
  | Some inj -> Fault.on_access inj ~addr:(Tag.addr w) ~size ~bounds:b

let do_load st frame ty addrv =
  let w, b = as_ptr addrv in
  let bytes = Ctype.sizeof st.tenv ty in
  let b = injected_bounds st w b ~size:bytes in
  checked_access st frame w b ~size:bytes ~is_store:false;
  let a = Tag.addr w in
  charge_load st a bytes;
  match Memory.read_size st.mem a ~bytes with
  | raw -> (
    match ty with
    | Ctype.Ptr _ -> VP (raw, Bounds.no_bounds)
    | Ctype.F64 -> VF (Int64.float_of_bits raw)
    | _ -> VI (sext raw bytes))
  | exception Memory.Fault (_, fa) -> Trap.raise_trap (Trap.Memory_fault fa)

let do_store st frame ty addrv v =
  let w, b = as_ptr addrv in
  let bytes = Ctype.sizeof st.tenv ty in
  let b = injected_bounds st w b ~size:bytes in
  checked_access st frame w b ~size:bytes ~is_store:true;
  let a = Tag.addr w in
  let raw =
    match (ty, v) with
    | Ctype.F64, _ -> Int64.bits_of_float (as_float v)
    | Ctype.Ptr _, VP (pw, pb) ->
      (* demote: the pointer value (tag included) goes to memory; the
         bounds register is dropped. ifpextract refreshes poison bits. *)
      if ifp_mode st && frame.instrumented && pb <> Bounds.No_bounds then begin
        charge_ifp st Insn.Ifpextract 1;
        Insn.ifpextract pw ~bounds:pb
      end
      else pw
    | _, v -> as_int v
  in
  charge_store st a bytes;
  match Memory.write_size st.mem a ~bytes raw with
  | () -> ()
  | exception Memory.Fault (_, fa) -> Trap.raise_trap (Trap.Memory_fault fa)

(* ---- gep ----------------------------------------------------------- *)

(* Memoised subobject-index delta for a gep site: the static constant the
   compiler would bake into the ifpidx immediate. *)
let gep_idx_delta st pointee steps =
  match Typecheck.layout_path st.tenv pointee steps with
  | [] -> 0
  | path -> (
    let layout = layout_of st pointee in
    match Layout.index_of_path layout path with Some d -> d | None -> 0)

let eval_gep st frame pointee basev steps ~eval =
  let w, b = as_ptr basev in
  let addr0 = Tag.addr w in
  let dyn = ref 0 in
  let rec walk ty addr nb leading = function
    | [] -> (addr, nb)
    | Ir.S_field f :: rest ->
      let s = match ty with Ctype.Struct s -> s | _ -> abort "gep: bad field" in
      let off, fty = Ctype.field_offset st.tenv s f in
      let addr' = Int64.add addr (Int64.of_int off) in
      let nb' =
        Bounds.make ~lo:addr' ~hi:(Int64.add addr' (Int64.of_int (Ctype.sizeof st.tenv fty)))
      in
      walk fty addr' (Some nb') false rest
    | Ir.S_index ie :: rest ->
      let k = as_int (eval ie) in
      incr dyn;
      (match ty with
      | Ctype.Array (elt, _) ->
        let esz = Int64.of_int (Ctype.sizeof st.tenv elt) in
        walk elt (Int64.add addr (Int64.mul k esz)) nb false rest
      | _ when leading ->
        let esz = Int64.of_int (Ctype.sizeof st.tenv ty) in
        walk ty (Int64.add addr (Int64.mul k esz)) nb false rest
      | _ -> abort "gep: index into non-array")
  in
  let final_addr, nb = walk pointee addr0 None true steps in
  let delta = Int64.sub final_addr addr0 in
  if ifp_mode st && frame.instrumented then begin
    let out_bounds =
      match b with
      | Bounds.No_bounds -> Bounds.no_bounds
      | _ -> ( match nb with Some x -> x | None -> b)
    in
    (* the muls for dynamic indexes stay ordinary ALU work; the final add
       becomes ifpadd (address + tag update) *)
    if !dyn > 0 then begin
      st.c.base_instrs <- st.c.base_instrs + !dyn;
      cycles st (!dyn * Cost.mul)
    end;
    charge_ifp st Insn.Ifpadd 1;
    let w' = Insn.ifpadd w ~delta ~bounds:out_bounds in
    let idxd = gep_idx_delta st pointee steps in
    let w' =
      if idxd > 0 then begin
        charge_ifp st Insn.Ifpidx 1;
        Insn.ifpidx w' idxd
      end
      else w'
    in
    if not (Bounds.equal out_bounds b) then charge_ifp st Insn.Ifpbnd 1;
    VP (w', out_bounds)
  end
  else begin
    if !dyn > 0 then begin
      st.c.base_instrs <- st.c.base_instrs + (!dyn * 2);
      cycles st (!dyn * (Cost.mul + Cost.alu))
    end
    else base st 0;
    VP (Int64.add w delta, Bounds.no_bounds)
  end

(* ---- promote -------------------------------------------------------- *)

let eval_promote st v =
  let w, b = as_ptr v in
  let w = match st.inj with Some inj -> Fault.on_promote inj w | None -> w in
  match st.cfg.variant with
  | Baseline -> v
  | Ifp_no_promote ->
    charge_ifp st Insn.Promote 1;
    VP (w, Bounds.no_bounds)
  | Ifp ->
    charge_ifp st Insn.Promote 1;
    ignore b;
    (match Tag.subobj_index w with
    | Some i when i > 0 -> st.c.promotes_subobj <- st.c.promotes_subobj + 1
    | Some _ | None -> ());
    let meta = match st.meta with Some m -> m | None -> assert false in
    let r = Promote.run ~narrow:st.cfg.narrowing meta w in
    List.iter
      (fun { Meta.addr; bytes } -> mem_cycles st addr bytes Cache.Load)
      r.fetches;
    cycles st
      ((r.walk_elems * Cost.walk_per_elem)
      + (r.divisions * Cost.div)
      + (r.mac_checks * Cost.mac_check));
    trace st (fun _ ->
        T_promote
          {
            ptr = w;
            outcome =
              (match r.Promote.outcome with
              | Promote.Bypass_poisoned -> "bypass:poisoned"
              | Promote.Bypass_null -> "bypass:null"
              | Promote.Bypass_legacy -> "bypass:legacy"
              | Promote.Metadata_invalid m -> "invalid:" ^ m
              | Promote.Temporal_stale { freed; gen_ptr; gen_meta } ->
                Printf.sprintf "temporal-stale:%s:g%d/g%d"
                  (if freed then "freed" else "recycled")
                  gen_ptr gen_meta
              | Promote.Retrieved Promote.No_subobject -> "retrieved"
              | Promote.Retrieved Promote.Narrowed -> "retrieved:narrowed"
              | Promote.Retrieved (Promote.Narrow_failed m) ->
                "retrieved:narrow-failed:" ^ m);
            bounds = Format.asprintf "%a" Bounds.pp r.Promote.bounds;
          });
    (* Adversarial mode: with a fault injector armed, an invalid-metadata
       promote traps architecturally (the paper's §3.3 MAC-mismatch trap)
       instead of deferring detection to the poisoned dereference — this
       is the configuration whose trap paths the fault campaign measures.
       Ordinary runs keep the deferred-poison semantics unchanged. *)
    (match (r.outcome, st.inj) with
    | Promote.Metadata_invalid reason, Some _ ->
      st.c.promotes_invalid_meta <- st.c.promotes_invalid_meta + 1;
      if String.equal reason "MAC mismatch" then
        Trap.raise_trap (Trap.Mac_mismatch { ptr = w })
      else Trap.raise_trap (Trap.Invalid_metadata { ptr = w; reason })
    | Promote.Temporal_stale _, Some _ ->
      (* armed temporal promote traps immediately instead of deferring
         to the poisoned dereference — same escalation as the MAC path *)
      st.c.promotes_invalid_meta <- st.c.promotes_invalid_meta + 1;
      Trap.raise_trap (Trap.Use_after_free { ptr = w })
    | _ -> ());
    (match r.outcome with
    | Promote.Bypass_poisoned -> st.c.promotes_poisoned <- st.c.promotes_poisoned + 1
    | Promote.Bypass_null -> st.c.promotes_null <- st.c.promotes_null + 1
    | Promote.Bypass_legacy -> st.c.promotes_legacy <- st.c.promotes_legacy + 1
    | Promote.Metadata_invalid _ | Promote.Temporal_stale _ ->
      st.c.promotes_invalid_meta <- st.c.promotes_invalid_meta + 1
    | Promote.Retrieved status ->
      st.c.promotes_valid <- st.c.promotes_valid + 1;
      (match status with
      | Promote.Narrowed -> st.c.narrows_ok <- st.c.narrows_ok + 1
      | Promote.Narrow_failed _ -> st.c.narrows_failed <- st.c.narrows_failed + 1
      | Promote.No_subobject -> ()));
    VP (r.ptr, r.bounds)

(* ---- local object registration -------------------------------------- *)

let register_local st frame name =
  match Hashtbl.find_opt frame.locals name with
  | None -> abort ("register of unknown local " ^ name)
  | Some (addr, ty, tagged) -> (
    let meta = match st.meta with Some m -> m | None -> assert false in
    let size = Ctype.sizeof st.tenv ty in
    let layout_ptr = Meta.intern_layout meta st.tenv ty in
    let has_layout = not (Int64.equal layout_ptr 0L) in
    st.c.local_objs <- st.c.local_objs + 1;
    if has_layout then st.c.local_objs_layout <- st.c.local_objs_layout + 1;
    trace st (fun _ -> T_register { what = "local:" ^ name; ptr = addr; size });
    if Meta.Local_offset.fits ~size then begin
      let p = Meta.Local_offset.register meta ~base:addr ~size ~layout_ptr in
      tagged := p;
      base st 6;
      charge_ifp st Insn.Ifpmac 1;
      charge_ifp st Insn.Ifpmd 1;
      replay_touches st [ (Tag.metadata_addr_local_offset p, 16) ]
    end
    else
      match Meta.Global_table.register meta ~base:addr ~size ~layout_ptr with
      | Some p ->
        tagged := p;
        base st 50;
        charge_ifp st Insn.Ifpmd 1
      | None ->
        tagged := addr;
        base st 20)

let deregister_local st frame name =
  match Hashtbl.find_opt frame.locals name with
  | None -> ()
  | Some (_, _, tagged) -> (
    let meta = match st.meta with Some m -> m | None -> assert false in
    let p = !tagged in
    trace st (fun _ -> T_deregister { what = "local:" ^ name; ptr = p });
    match Tag.scheme p with
    | Tag.Local_offset ->
      if st.cfg.temporal then begin
        (* free-epoch transition: validate, bump generation, re-MAC.
           The record stays in place; reuse of the stack slot reads the
           prior generation back at register time. *)
        ignore (Meta.Local_offset.deregister_temporal meta p);
        base st 6;
        charge_ifp st Insn.Ifpmac 1
      end
      else begin
        Meta.Local_offset.deregister meta p;
        base st 4
      end;
      replay_touches st [ (Tag.metadata_addr_local_offset p, 16) ]
    | Tag.Global_table ->
      if st.cfg.temporal then
        ignore (Meta.Global_table.deregister_temporal meta p)
      else Meta.Global_table.deregister meta p;
      base st 30
    | Tag.Legacy | Tag.Subheap -> ())

(* ---- the interpreter ------------------------------------------------ *)

let rec eval st frame (e : Ir.expr) : value =
  match e with
  | Int x -> VI x
  | Float f -> VF f
  | Var name -> (
    match Hashtbl.find_opt frame.vars name with
    | Some r -> !r
    | None -> abort ("unbound variable " ^ name))
  | Binop (Ir.LAnd, a, b) ->
    base st 1;
    if not (truth (eval st frame a)) then VI 0L
    else VI (if truth (eval st frame b) then 1L else 0L)
  | Binop (Ir.LOr, a, b) ->
    base st 1;
    if truth (eval st frame a) then VI 1L
    else VI (if truth (eval st frame b) then 1L else 0L)
  | Binop (op, a, b) -> eval_binop st op (eval st frame a) (eval st frame b)
  | Unop (op, a) -> eval_unop st op (eval st frame a)
  | Load (ty, addr) -> do_load st frame ty (eval st frame addr)
  | Addr_local name -> (
    base st 1;
    match Hashtbl.find_opt frame.locals name with
    | None -> abort ("address of unknown local " ^ name)
    | Some (addr, ty, tagged) ->
      let size = Ctype.sizeof st.tenv ty in
      if ifp_mode st && frame.instrumented then begin
        charge_ifp st Insn.Ifpbnd 1;
        VP (!tagged, Bounds.of_base_size addr size)
      end
      else VP (addr, Bounds.no_bounds))
  | Addr_global g -> (
    match Hashtbl.find_opt st.globals g with
    | None -> abort ("unknown global " ^ g)
    | Some go ->
      if ifp_mode st && frame.instrumented then begin
        (* the "getptr" helper call of §4.2.2 *)
        base st 5;
        charge_ifp st Insn.Ifpbnd 1;
        VP (go.gtagged, go.gbounds)
      end
      else begin
        base st 1;
        VP (go.gaddr, Bounds.no_bounds)
      end)
  | Load_global g -> (
    match Hashtbl.find_opt st.globals g with
    | None -> abort ("unknown global " ^ g)
    | Some go ->
      (* by-name access: untagged, uninstrumented *)
      let gty =
        match Ir.find_global st.prog g with
        | Some { gty; _ } -> gty
        | None -> assert false
      in
      let bytes = Ctype.sizeof st.tenv gty in
      charge_load st go.gaddr bytes;
      let raw = Memory.read_size st.mem go.gaddr ~bytes in
      (match gty with
      | Ctype.Ptr _ -> VP (raw, Bounds.no_bounds)
      | Ctype.F64 -> VF (Int64.float_of_bits raw)
      | _ -> VI (sext raw bytes)))
  | Gep (pointee, bse, steps) ->
    eval_gep st frame pointee (eval st frame bse) steps ~eval:(eval st frame)
  | Call (fn, args) -> eval_call st frame fn args
  | Malloc (ty, n) ->
    let count = Int64.to_int (as_int (eval st frame n)) in
    do_malloc st frame ~size:(max 1 count * Ctype.sizeof st.tenv ty) ~cty:(Some ty)
  | Malloc_bytes n ->
    let bytes = Int64.to_int (as_int (eval st frame n)) in
    do_malloc st frame ~size:(max 1 bytes) ~cty:None
  | Malloc_sized (ty, n) ->
    let bytes = Int64.to_int (as_int (eval st frame n)) in
    do_malloc st frame ~size:(max 1 bytes) ~cty:(Some ty)
  | Cast (ty, a) -> (
    let v = eval st frame a in
    match (ty, v) with
    | Ctype.Ptr _, VI w -> VP (w, Bounds.no_bounds)
    | Ctype.Ptr _, (VP _ as p) -> p
    | Ctype.Ptr _, VF _ -> abort "float to pointer cast"
    | Ctype.F64, v ->
      base st 1;
      VF (as_float v)
    | _, VF f ->
      base st 1;
      VI (Int64.of_float f)
    | _, v -> VI (sext (as_int v) (max 1 (Ctype.sizeof st.tenv ty))))
  | Ifp_promote e -> eval_promote st (eval st frame e)

and eval_binop st op a b =
  let int_op f =
    base st 1;
    VI (f (as_int a) (as_int b))
  in
  let cmp f =
    base st 1;
    let x, y =
      match (a, b) with
      | VP (wa, _), VP (wb, _) -> (Tag.addr wa, Tag.addr wb)
      | _ -> (as_int a, as_int b)
    in
    VI (if f (Int64.compare x y) 0 then 1L else 0L)
  in
  let fop f =
    base st 1;
    cycles st (Cost.fp - 1);
    VF (f (as_float a) (as_float b))
  in
  let fcmp f =
    base st 1;
    cycles st (Cost.fp - 1);
    VI (if f (as_float a) (as_float b) then 1L else 0L)
  in
  match op with
  | Ir.Add -> int_op Int64.add
  | Ir.Sub -> int_op Int64.sub
  | Ir.Mul ->
    cycles st (Cost.mul - 1);
    int_op Int64.mul
  | Ir.Div ->
    cycles st (Cost.div - 1);
    let d = as_int b in
    if Int64.equal d 0L then abort "division by zero";
    int_op Int64.div
  | Ir.Rem ->
    cycles st (Cost.div - 1);
    let d = as_int b in
    if Int64.equal d 0L then abort "remainder by zero";
    int_op Int64.rem
  | Ir.LAnd | Ir.LOr -> assert false (* short-circuit, handled in eval *)
  | Ir.BAnd -> int_op Int64.logand
  | Ir.BOr -> int_op Int64.logor
  | Ir.BXor -> int_op Int64.logxor
  | Ir.Shl -> int_op (fun x y -> Int64.shift_left x (Int64.to_int y land 63))
  | Ir.Shr -> int_op (fun x y -> Int64.shift_right_logical x (Int64.to_int y land 63))
  | Ir.Eq -> cmp ( = )
  | Ir.Ne -> cmp ( <> )
  | Ir.Lt -> cmp ( < )
  | Ir.Le -> cmp ( <= )
  | Ir.Gt -> cmp ( > )
  | Ir.Ge -> cmp ( >= )
  | Ir.FAdd -> fop ( +. )
  | Ir.FSub -> fop ( -. )
  | Ir.FMul -> fop ( *. )
  | Ir.FDiv -> fop ( /. )
  | Ir.FEq -> fcmp ( = )
  | Ir.FLt -> fcmp ( < )
  | Ir.FLe -> fcmp ( <= )

and eval_unop st op a =
  base st 1;
  match op with
  | Ir.Neg -> VI (Int64.neg (as_int a))
  | Ir.BNot -> VI (Int64.lognot (as_int a))
  | Ir.LNot -> VI (if Int64.equal (as_int a) 0L then 1L else 0L)
  | Ir.FNeg ->
    cycles st (Cost.fp - 1);
    VF (-.as_float a)
  | Ir.I2F ->
    cycles st (Cost.fp - 1);
    VF (Int64.to_float (as_int a))
  | Ir.F2I ->
    cycles st (Cost.fp - 1);
    VI (Int64.of_float (as_float a))

and do_malloc st frame ~size ~cty =
  let cty_for_alloc = if ifp_mode st && frame.instrumented then cty else None in
  let ptr, c = st.allocator.malloc ~size ~cty:cty_for_alloc in
  charge_alloc_cost st c;
  st.c.heap_objs <- st.c.heap_objs + 1;
  (match cty_for_alloc with
  | Some ty when Layout.length (layout_of st ty) > 1 ->
    st.c.heap_objs_layout <- st.c.heap_objs_layout + 1
  | Some _ | None -> ());
  if ifp_mode st && frame.instrumented then begin
    charge_ifp st Insn.Ifpbnd 1;
    VP (ptr, Bounds.of_base_size (Tag.addr ptr) size)
  end
  else VP (ptr, Bounds.no_bounds)

and eval_call st frame fn args =
  let argv = List.map (eval st frame) args in
  match fn with
  | "__print_i64" ->
    base st 3;
    (match argv with
    | [ v ] -> st.out <- Int64.to_string (as_int v) :: st.out
    | _ -> ());
    VI 0L
  | "__print_f64" ->
    base st 3;
    (match argv with
    | [ v ] -> st.out <- Printf.sprintf "%.6g" (as_float v) :: st.out
    | _ -> ());
    VI 0L
  | "__abort" -> abort "program called __abort"
  | _ -> (
    match Hashtbl.find_opt st.funcs fn with
    | None -> abort ("call to unknown function " ^ fn)
    | Some f ->
      budget_check st;
      (* call + ret + prologue/epilogue (ra/s-reg save, sp adjust) *)
      base st (6 + List.length args);
      cycles st (Cost.call - 1);
      let fm = Hashtbl.find st.fmeta fn in
      let spills =
        if ifp_mode st && f.instrumented && fm.has_calls then min 4 fm.ptr_regs
        else 0
      in
      if spills > 0 then charge_ifp st Insn.Stbnd spills;
      let callee_frame =
        {
          vars = Hashtbl.create 16;
          locals = Hashtbl.create 4;
          instrumented = f.instrumented;
        }
      in
      (* extended calling convention: bounds travel with pointer args,
         unless the callee is legacy code *)
      List.iter2
        (fun (pname, _) v ->
          let v = if f.instrumented then v else strip_bounds v in
          Hashtbl.replace callee_frame.vars pname (ref v))
        f.params argv;
      let saved_sp = st.sp in
      let ret =
        match List.iter (exec st callee_frame) f.body with
        | () -> VI 0L
        | exception Return_exc v -> v
      in
      st.sp <- saved_sp;
      if spills > 0 then charge_ifp st Insn.Ldbnd spills;
      (* implicit bounds clearing on return from legacy code (§4.1.2) *)
      if f.instrumented then ret else strip_bounds ret)

and strip_bounds = function
  | VP (w, _) -> VP (w, Bounds.no_bounds)
  | v -> v

and exec st frame (s : Ir.stmt) : unit =
  match s with
  | Let (name, ty, e) ->
    let v = coerce st ty (eval st frame e) in
    base st 1;
    Hashtbl.replace frame.vars name (ref v)
  | Assign (name, e) -> (
    let v = eval st frame e in
    base st 1;
    match Hashtbl.find_opt frame.vars name with
    | Some r -> r := v
    | None -> abort ("assign to unbound variable " ^ name))
  | Decl_local (name, ty) ->
    if not (Hashtbl.mem frame.locals name) then begin
      let size = Ctype.sizeof st.tenv ty in
      let footprint =
        if ifp_mode st && frame.instrumented then
          Meta.Local_offset.footprint ~size
        else Ifp_util.Bits.align_up size 16
      in
      let addr =
        Ifp_util.Bits.align_down64 (Int64.sub st.sp (Int64.of_int footprint)) 16
      in
      if Int64.compare addr st.stack_limit < 0 then raise (Abort Stack_overflow);
      st.sp <- addr;
      base st 1;
      Hashtbl.replace frame.locals name (addr, ty, ref addr)
    end
  | Store (ty, addr, v) ->
    let a = eval st frame addr in
    let value = eval st frame v in
    do_store st frame ty a value
  | Store_global (g, e) -> (
    let v = eval st frame e in
    match Hashtbl.find_opt st.globals g with
    | None -> abort ("unknown global " ^ g)
    | Some go ->
      let gty =
        match Ir.find_global st.prog g with
        | Some { gty; _ } -> gty
        | None -> assert false
      in
      let bytes = Ctype.sizeof st.tenv gty in
      charge_store st go.gaddr bytes;
      let raw =
        match (gty, v) with
        | Ctype.F64, _ -> Int64.bits_of_float (as_float v)
        | Ctype.Ptr _, VP (pw, pb) ->
          if ifp_mode st && frame.instrumented && pb <> Bounds.No_bounds then begin
            charge_ifp st Insn.Ifpextract 1;
            Insn.ifpextract pw ~bounds:pb
          end
          else pw
        | _, v -> as_int v
      in
      Memory.write_size st.mem go.gaddr ~bytes raw)
  | If (c, t, e) ->
    base st 2 (* compare + branch *);
    if truth (eval st frame c) then List.iter (exec st frame) t
    else List.iter (exec st frame) e
  | While (c, body) ->
    let rec loop () =
      budget_check st;
      base st 2 (* compare + branch *);
      if truth (eval st frame c) then begin
        (match List.iter (exec st frame) body with
        | () -> ()
        | exception Continue_exc -> ());
        loop ()
      end
    in
    (try loop () with Break_exc -> ())
  | Return None -> raise (Return_exc (VI 0L))
  | Return (Some e) -> raise (Return_exc (eval st frame e))
  | Expr e -> ignore (eval st frame e)
  | Free e ->
    let w, _ = as_ptr (eval st frame e) in
    let c = st.allocator.free w in
    charge_alloc_cost st c
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc
  | Ifp_register_local name -> register_local st frame name
  | Ifp_deregister_local name -> deregister_local st frame name

and coerce st ty v =
  match ty with
  | Ctype.I8 -> VI (sext (as_int v) 1)
  | Ctype.I16 -> VI (sext (as_int v) 2)
  | Ctype.I32 -> VI (sext (as_int v) 4)
  | Ctype.I64 -> VI (as_int v)
  | Ctype.F64 -> VF (as_float v)
  | Ctype.Ptr _ -> (
    match v with VP _ -> v | VI w -> VP (w, Bounds.no_bounds) | VF _ -> v)
  | Ctype.Void | Ctype.Struct _ | Ctype.Array _ ->
    ignore st;
    v

(* ---- program setup --------------------------------------------------- *)

let func_meta_of (f : Ir.func) =
  let has_calls = ref false in
  let ptr_regs = ref 0 in
  List.iter
    (fun (_, ty) -> match ty with Ctype.Ptr _ -> incr ptr_regs | _ -> ())
    f.params;
  let rec scan_expr (e : Ir.expr) =
    match e with
    | Call _ -> has_calls := true
    | Int _ | Float _ | Var _ | Addr_local _ | Addr_global _ | Load_global _ -> ()
    | Binop (_, a, b) ->
      scan_expr a;
      scan_expr b
    | Unop (_, a) | Cast (_, a) | Ifp_promote a | Load (_, a) | Malloc (_, a)
    | Malloc_bytes a | Malloc_sized (_, a) ->
      scan_expr a
    | Gep (_, b, steps) ->
      scan_expr b;
      List.iter
        (function Ir.S_index ie -> scan_expr ie | Ir.S_field _ -> ())
        steps
  in
  let rec scan_stmt (s : Ir.stmt) =
    match s with
    | Let (_, Ctype.Ptr _, e) ->
      incr ptr_regs;
      scan_expr e
    | Let (_, _, e) | Assign (_, e) | Store_global (_, e) | Expr e | Free e ->
      scan_expr e
    | Store (_, a, e) ->
      scan_expr a;
      scan_expr e
    | If (c, t, e) ->
      scan_expr c;
      List.iter scan_stmt t;
      List.iter scan_stmt e
    | While (c, b) ->
      scan_expr c;
      List.iter scan_stmt b
    | Return (Some e) -> scan_expr e
    | Decl_local _ | Return None | Break | Continue | Ifp_register_local _
    | Ifp_deregister_local _ ->
      ()
  in
  List.iter scan_stmt f.body;
  { has_calls = !has_calls; ptr_regs = !ptr_regs }

let setup_globals st =
  let bump = ref Memmap.globals_base in
  List.iter
    (fun (g : Ir.global) ->
      let size = max 1 (Ctype.sizeof st.tenv g.gty) in
      let footprint =
        if ifp_mode st then Meta.Local_offset.footprint ~size
        else Ifp_util.Bits.align_up size 16
      in
      let addr = Ifp_util.Bits.align_up64 !bump 16 in
      bump := Int64.add addr (Int64.of_int footprint);
      if
        Int64.compare !bump
          (Int64.add Memmap.globals_base (Int64.of_int Memmap.globals_size))
        > 0
      then abort "globals region exhausted";
      let go =
        { gaddr = addr; gsize = size; gtagged = addr; gbounds = Bounds.no_bounds }
      in
      (if ifp_mode st && g.registered then
         match st.meta with
         | None -> ()
         | Some meta ->
           let layout_ptr = Meta.intern_layout meta st.tenv g.gty in
           let has_layout = not (Int64.equal layout_ptr 0L) in
           st.c.global_objs <- st.c.global_objs + 1;
           if has_layout then
             st.c.global_objs_layout <- st.c.global_objs_layout + 1;
           base st 20;
           if Meta.Local_offset.fits ~size then begin
             go.gtagged <-
               Meta.Local_offset.register meta ~base:addr ~size ~layout_ptr;
             charge_ifp st Insn.Ifpmac 1
           end
           else
             match Meta.Global_table.register meta ~base:addr ~size ~layout_ptr with
             | Some p -> go.gtagged <- p
             | None -> ());
      go.gbounds <- Bounds.of_base_size addr size;
      Hashtbl.replace st.globals g.gname go)
    st.prog.globals

let run ?(config = default_config) (raw_prog : Ir.program) =
  Typecheck.check_program raw_prog;
  let prog, report =
    match config.variant with
    | Baseline -> (raw_prog, None)
    | Ifp | Ifp_no_promote ->
      let p, r =
        Instrument.run
          ~config:{ Instrument.infer_alloc_types = config.infer_alloc_types }
          raw_prog
      in
      (p, Some r)
  in
  let mem = Memory.create () in
  let cache = Cache.create () in
  (* map fixed regions *)
  Memory.map mem ~base:Memmap.globals_base ~size:Memmap.globals_size;
  Memory.map mem ~base:Memmap.layout_region_base ~size:Memmap.layout_region_size;
  Memory.map mem ~base:Memmap.global_table_base
    ~size:(Memmap.global_table_entries * 16);
  Memory.map mem
    ~base:(Int64.sub Memmap.stack_top (Int64.of_int Memmap.stack_size))
    ~size:Memmap.stack_size;
  let rng = Ifp_util.Prng.create config.seed in
  let meta =
    match config.variant with
    | Baseline -> None
    | Ifp | Ifp_no_promote ->
      Some
        (Meta.create ~temporal:config.temporal ~memory:mem
           ~mac_key:(Ifp_metadata.Mac.fresh_key rng)
           ~layout_region:(Memmap.layout_region_base, Memmap.layout_region_size)
           ~global_table:(Memmap.global_table_base, Memmap.global_table_entries)
           ())
  in
  let allocator =
    match (config.variant, config.alloc) with
    | Baseline, _ | _, Alloc_baseline ->
      Ifp_alloc.Baseline.create ~memory:mem ~base:Memmap.heap_base
        ~size:(1 lsl Memmap.heap_size_log2)
    | _, Alloc_wrapped ->
      let base_alloc =
        Ifp_alloc.Baseline.create ~memory:mem ~base:Memmap.heap_base
          ~size:(1 lsl Memmap.heap_size_log2)
      in
      let meta = Option.get meta in
      Ifp_alloc.Wrapped.create ~meta ~tenv:prog.tenv ~base_alloc
    | _, Alloc_subheap ->
      let meta = Option.get meta in
      Ifp_alloc.Subheap_alloc.create ~meta ~tenv:prog.tenv ~memory:mem
        ~base:Memmap.heap_base ~size_log2:Memmap.heap_size_log2
    | _, Alloc_mixed ->
      (* split the heap: buddy arena in the lower half (naturally aligned
         to its size), baseline/wrapped heap in the upper half *)
      let meta = Option.get meta in
      let half_log2 = Memmap.heap_size_log2 - 1 in
      let subheap =
        Ifp_alloc.Subheap_alloc.create ~meta ~tenv:prog.tenv ~memory:mem
          ~base:Memmap.heap_base ~size_log2:half_log2
      in
      let base_alloc =
        Ifp_alloc.Baseline.create ~memory:mem
          ~base:(Int64.add Memmap.heap_base (Int64.of_int (1 lsl half_log2)))
          ~size:(1 lsl half_log2)
      in
      let wrapped =
        Ifp_alloc.Wrapped.create ~meta ~tenv:prog.tenv ~base_alloc
      in
      Ifp_alloc.Mixed.create ~subheap ~wrapped
  in
  let inj =
    Option.map
      (fun plan -> Fault.create plan ~mem ~heap_base:Memmap.heap_base)
      config.fault_plan
  in
  (match (inj, meta) with
  | Some i, Some m -> Fault.attach_meta i m
  | _ -> ());
  let st =
    {
      cfg = config;
      prog;
      tenv = prog.tenv;
      mem;
      cache;
      meta;
      allocator;
      inj;
      c = Counters.create ();
      funcs = Hashtbl.create 64;
      fmeta = Hashtbl.create 64;
      globals = Hashtbl.create 16;
      layouts = Hashtbl.create 32;
      sp = Memmap.stack_top;
      stack_limit = Int64.sub Memmap.stack_top (Int64.of_int Memmap.stack_size);
      out = [];
      trace = [];
      trace_left = config.trace_limit;
    }
  in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace st.funcs f.fname f;
      Hashtbl.replace st.fmeta f.fname (func_meta_of f))
    prog.funcs;
  let outcome =
    match setup_globals st with
    | () -> (
      match Hashtbl.find_opt st.funcs "main" with
      | None -> Aborted (Program_error "no main function")
      | Some mainf -> (
        let frame =
          {
            vars = Hashtbl.create 16;
            locals = Hashtbl.create 4;
            instrumented = mainf.instrumented;
          }
        in
        match List.iter (exec st frame) mainf.body with
        | () -> Finished 0L
        | exception Return_exc v -> Finished (as_int v)
        | exception Trap.Trap t ->
          st.trace_left <- max st.trace_left 1;
          trace st (fun _ -> T_trap (Trap.to_string t));
          Trapped t
        | exception Abort msg -> Aborted msg
        | exception Memory.Fault (_, a) -> Trapped (Trap.Memory_fault a)
        | exception Alloc.Out_of_memory msg -> Aborted (Out_of_memory msg)
        | exception Alloc.Double_free p ->
          Aborted
            (Program_error
               (Printf.sprintf "double free detected by allocator (0x%Lx)" p))))
    | exception Abort msg -> Aborted msg
  in
  let alloc_stats = st.allocator.stats () in
  let layout_bytes =
    match meta with Some m -> Meta.layout_bytes_used m | None -> 0
  in
  {
    outcome;
    counters = st.c;
    alloc_stats;
    alloc_extra = st.allocator.extra_stats ();
    cache_accesses = Cache.accesses cache;
    cache_misses = Cache.misses cache;
    mem_footprint = alloc_stats.footprint_bytes + layout_bytes;
    output = List.rev st.out;
    instrument_report = report;
    trace = List.rev st.trace;
    fault_injections =
      (match inj with Some i -> Fault.injections i | None -> []);
  }
