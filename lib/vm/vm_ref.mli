(** Reference interpreter: the name-keyed tree walker that the
    slot-resolved {!Vm} replaced.

    Functionally identical to {!Vm.run} — same cost model, counters,
    traces, outcomes — but resolves every variable access through
    string-keyed hash tables and recomputes sizes/offsets/layout indices
    per access. It exists as the executable specification the fast
    interpreter is differentially tested against (test_vm, the
    [ifp_bench] before/after comparison); it is not used by the
    experiment drivers. *)

val run : ?config:Vm.config -> Ifp_compiler.Ir.program -> Vm.result
(** Same contract as {!Vm.run}, including the concurrency guarantees. *)
