(* Engine selection: one place that maps the [config.engine] field (and
   the CLI's [--engine] spelling) to an actual engine entry point. The
   campaign layer's default runner goes through {!run}, so a job's
   config picks its engine without any caller plumbing. *)

let of_string = function
  | "vm" -> Some Rt.Eng_vm
  | "vm-ref" -> Some Rt.Eng_ref
  | "closure" -> Some Rt.Eng_closure
  | _ -> None

let to_string = function
  | Rt.Eng_vm -> "vm"
  | Rt.Eng_ref -> "vm-ref"
  | Rt.Eng_closure -> "closure"

(* every engine, in presentation order (bench matrix columns) *)
let all = [ Rt.Eng_vm; Rt.Eng_ref; Rt.Eng_closure ]

let names = List.map to_string all

let run ?(config = Rt.default_config) (prog : Ifp_compiler.Ir.program) :
    Vm.result =
  match config.engine with
  | Rt.Eng_vm -> Vm.run ~config prog
  | Rt.Eng_ref -> Vm_ref.run ~config prog
  | Rt.Eng_closure -> Vm_closure.run ~config prog
