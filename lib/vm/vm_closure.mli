(** The closure-compiled engine (third generation). {!Compile} lowers
    {!Ifp_compiler.Resolve} output to trees of OCaml closures — one
    closure per node, successors pre-linked, hot tagged-pointer
    sequences fused into superinstructions, metadata layout walks
    served from per-site inline caches — and [run] executes main's
    compiled body.

    Observationally identical to {!Vm.run} and {!Vm_ref.run}: same
    outcome, every counter, traces and output, bit for bit. Only
    host-side wall time differs. *)

val run :
  ?config:Vm.config ->
  ?profile:Profile.t ->
  Ifp_compiler.Ir.program ->
  Vm.result
(** Same contract as {!Vm.run} (typecheck, instrument, execute,
    per-call state — safe to call concurrently from multiple domains).
    [?profile] attaches a dispatch profiler: every compiled closure is
    wrapped with enter/exit probes feeding per-opcode counts and
    self-time ({!Profile.report}); omitting it compiles probe-free
    closures with zero overhead. *)
