(* The slot-resolved interpreter engine. The execution substrate —
   configuration, machine state, cost charging, checked access, promote,
   registration, setup, run scaffolding — lives in {!Rt} and is shared
   with the closure-compiled engine ({!Vm_closure}); this module is the
   direct-recursion strategy over those primitives. *)

include Rt

let rec eval st frame (e : R.expr) : value =
  match e with
  | R.Int x -> VI x
  | R.Float f -> VF f
  | R.Var i ->
    (* in-bounds by resolution *)
    let v = Array.unsafe_get frame.vars i in
    if v == unbound then abort ("unbound variable " ^ frame.rf.var_names.(i))
    else v
  | R.Binop (Ir.LAnd, a, b) ->
    base st 1;
    if not (truth (eval st frame a)) then vi_zero
    else vi_bool (truth (eval st frame b))
  | R.Binop (Ir.LOr, a, b) ->
    base st 1;
    if truth (eval st frame a) then vi_one
    else vi_bool (truth (eval st frame b))
  | R.Binop (op, a, b) -> eval_binop st op (eval st frame a) (eval st frame b)
  | R.Unop (op, a) -> eval_unop st op (eval st frame a)
  | R.Load { cls; bytes; addr } -> do_load st frame cls bytes (eval st frame addr)
  | R.Addr_local slot ->
    base st 1;
    let addr = frame.local_addr.(slot) in
    if Int64.equal addr local_unset then
      abort ("address of unknown local " ^ frame.rf.local_names.(slot))
    else if ifp_mode st && frame.instrumented then begin
      charge_ifp st Insn.Ifpbnd 1;
      VP (frame.local_tagged.(slot), Bounds.of_base_size addr frame.local_size.(slot))
    end
    else VP (addr, Bounds.no_bounds)
  | R.Addr_global g ->
    let go = st.globals.(g) in
    if ifp_mode st && frame.instrumented then begin
      (* the "getptr" helper call of §4.2.2 *)
      base st 5;
      charge_ifp st Insn.Ifpbnd 1;
      VP (go.gtagged, go.gbounds)
    end
    else begin
      base st 1;
      VP (go.gaddr, Bounds.no_bounds)
    end
  | R.Load_global { g; cls; bytes } -> (
    (* by-name access: untagged, uninstrumented *)
    let go = st.globals.(g) in
    charge_load st go.gaddr bytes;
    let raw = Memory.read_size st.mem go.gaddr ~bytes in
    match cls with
    | R.Cls_ptr -> VP (raw, Bounds.no_bounds)
    | R.Cls_f64 -> VF (Int64.float_of_bits raw)
    | R.Cls_int -> VI (sext raw bytes))
  | R.Gep { base; steps; idx_delta; site = _ } ->
    eval_gep st frame (eval st frame base) steps idx_delta
  | R.Call { target; args; n_args } -> eval_call st frame target args n_args
  | R.Malloc { scale; count; cty; layout_multi } ->
    let n = Int64.to_int (eval_i st frame count) in
    do_malloc st frame ~size:(max 1 n * scale) ~cty ~layout_multi
  | R.Cast { kind; e } -> (
    let v = eval st frame e in
    match kind with
    | R.Cast_ptr -> (
      match v with
      | VI w -> if Int64.equal w 0L then null_ptr else VP (w, Bounds.no_bounds)
      | VP _ -> v
      | VF _ -> abort "float to pointer cast")
    | R.Cast_f64 ->
      base st 1;
      VF (as_float v)
    | R.Cast_int n -> (
      match v with
      | VF f ->
        base st 1;
        VI (Int64.of_float f)
      | v -> VI (sext (as_int v) n)))
  | R.Ifp_promote { e; site = _ } -> eval_promote st (eval st frame e)
  | R.Bad msg -> abort msg

(* Unboxed integer evaluation: [eval_i st frame e] computes
   [as_int (eval st frame e)] without materialising the intermediate
   value, for the integer contexts (conditions, integer arithmetic, gep
   indexes, malloc counts, integer stores) where the hot path would
   otherwise allocate per node. Charges and failure order match the
   generic path exactly — including the right-to-left operand
   evaluation the generic [Binop] application performs. *)
and eval_i st frame (e : R.expr) : int64 =
  match e with
  | R.Int x -> x
  | R.Var i ->
    let v = Array.unsafe_get frame.vars i in
    if v == unbound then abort ("unbound variable " ^ frame.rf.var_names.(i))
    else as_int v
  | R.Binop (Ir.LAnd, a, b) ->
    base st 1;
    if Int64.equal (eval_i st frame a) 0L then 0L
    else if Int64.equal (eval_i st frame b) 0L then 0L
    else 1L
  | R.Binop (Ir.LOr, a, b) ->
    base st 1;
    if not (Int64.equal (eval_i st frame a) 0L) then 1L
    else if Int64.equal (eval_i st frame b) 0L then 0L
    else 1L
  | R.Binop
      ( (( Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Rem | Ir.BAnd | Ir.BOr
         | Ir.BXor | Ir.Shl | Ir.Shr ) as op),
        a,
        b ) -> (
    let y = eval_i st frame b in
    let x = eval_i st frame a in
    match op with
    | Ir.Add ->
      base st 1;
      Int64.add x y
    | Ir.Sub ->
      base st 1;
      Int64.sub x y
    | Ir.Mul ->
      cycles st (Cost.mul - 1);
      base st 1;
      Int64.mul x y
    | Ir.Div ->
      cycles st (Cost.div - 1);
      if Int64.equal y 0L then abort "division by zero";
      base st 1;
      Int64.div x y
    | Ir.Rem ->
      cycles st (Cost.div - 1);
      if Int64.equal y 0L then abort "remainder by zero";
      base st 1;
      Int64.rem x y
    | Ir.BAnd ->
      base st 1;
      Int64.logand x y
    | Ir.BOr ->
      base st 1;
      Int64.logor x y
    | Ir.BXor ->
      base st 1;
      Int64.logxor x y
    | Ir.Shl ->
      base st 1;
      Int64.shift_left x (Int64.to_int y land 63)
    | Ir.Shr ->
      base st 1;
      Int64.shift_right_logical x (Int64.to_int y land 63)
    | _ -> assert false)
  | R.Unop (((Ir.Neg | Ir.BNot | Ir.LNot) as op), a) -> (
    let x = eval_i st frame a in
    base st 1;
    match op with
    | Ir.Neg -> Int64.neg x
    | Ir.BNot -> Int64.lognot x
    | Ir.LNot -> if Int64.equal x 0L then 1L else 0L
    | _ -> assert false)
  | R.Load { cls = R.Cls_int; bytes; addr } ->
    do_load_int st frame bytes (eval st frame addr)
  | R.Binop (((Ir.Eq | Ir.Ne | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge) as op), a, b) ->
    (* operands may be pointers; evaluate generically, compare unboxed *)
    let vb = eval st frame b in
    let va = eval st frame a in
    base st 1;
    let c =
      match (va, vb) with
      | VP (wa, _), VP (wb, _) -> Int64.compare (Tag.addr wa) (Tag.addr wb)
      | _ -> Int64.compare (as_int va) (as_int vb)
    in
    (match op with
    | Ir.Eq -> if c = 0 then 1L else 0L
    | Ir.Ne -> if c <> 0 then 1L else 0L
    | Ir.Lt -> if c < 0 then 1L else 0L
    | Ir.Le -> if c <= 0 then 1L else 0L
    | Ir.Gt -> if c > 0 then 1L else 0L
    | Ir.Ge -> if c >= 0 then 1L else 0L
    | _ -> assert false)
  | R.Binop (((Ir.FEq | Ir.FLt | Ir.FLe) as op), a, b) ->
    let vb = eval st frame b in
    let va = eval st frame a in
    base st 1;
    cycles st (Cost.fp - 1);
    let y = as_float vb in
    let x = as_float va in
    (match op with
    | Ir.FEq -> if x = y then 1L else 0L
    | Ir.FLt -> if x < y then 1L else 0L
    | Ir.FLe -> if x <= y then 1L else 0L
    | _ -> assert false)
  | e -> as_int (eval st frame e)

and eval_gep st frame basev steps idx_delta =
  let w =
    match basev with
    | VP (w, _) | VI w -> w
    | VF _ -> abort "float used as pointer"
  in
  let b = match basev with VP (_, b) -> b | _ -> Bounds.no_bounds in
  let addr0 = Tag.addr w in
  (* resolve folded static field runs, so the common shapes are a single
     step and need neither mutable walk state nor a loop *)
  match steps with
  | [] -> gep_finish st frame w b idx_delta ~delta:0L ~dyn:0 ~nb_lo:0L ~nb_hi:0L ~have_nb:false
  | [ R.Rs_field { off; fsize } ] ->
    let lo = Int64.add addr0 (Int64.of_int off) in
    gep_finish st frame w b idx_delta ~delta:(Int64.of_int off) ~dyn:0
      ~nb_lo:lo ~nb_hi:(Int64.add lo (Int64.of_int fsize)) ~have_nb:true
  | [ R.Rs_index { esize; idx } ] ->
    let k = eval_i st frame idx in
    gep_finish st frame w b idx_delta ~delta:(Int64.mul k (Int64.of_int esize))
      ~dyn:1 ~nb_lo:0L ~nb_hi:0L ~have_nb:false
  | steps ->
    let addr, nb_lo, nb_hi, have_nb, dyn =
      gep_walk st frame steps addr0 0L 0L false 0
    in
    gep_finish st frame w b idx_delta ~delta:(Int64.sub addr addr0) ~dyn
      ~nb_lo ~nb_hi ~have_nb

and gep_walk st frame steps addr nb_lo nb_hi have_nb dyn =
  match steps with
  | [] -> (addr, nb_lo, nb_hi, have_nb, dyn)
  | R.Rs_field { off; fsize } :: rest ->
    (* narrowed bounds of the last field step *)
    let a' = Int64.add addr (Int64.of_int off) in
    gep_walk st frame rest a' a' (Int64.add a' (Int64.of_int fsize)) true dyn
  | R.Rs_index { esize; idx } :: rest ->
    let k = eval_i st frame idx in
    gep_walk st frame rest
      (Int64.add addr (Int64.mul k (Int64.of_int esize)))
      nb_lo nb_hi have_nb (dyn + 1)
  | R.Rs_bad msg :: _ -> abort msg

and eval_call st frame target args n_args =
  match target with
  | R.C_func i when List.compare_lengths (st.rp.funcs.(i)).R.params args = 0 ->
    (* arity matches: evaluate arguments straight into the callee's
       slots. Binds are unobservable between argument evaluations, so
       this matches the reference's evaluate-all-then-bind order; the
       arity-mismatch case keeps the reference path (and its
       [Invalid_argument] after evaluating every argument). *)
    let f = st.rp.funcs.(i) in
    let callee_frame = make_frame f in
    let rec bind ps es =
      match (ps, es) with
      | [], [] -> ()
      | p :: ps, e :: es ->
        let v = eval st frame e in
        (* extended calling convention: bounds travel with pointer args,
           unless the callee is legacy code *)
        let v = if f.instrumented then v else strip_bounds v in
        Array.unsafe_set callee_frame.vars p v;
        bind ps es
      | _ -> assert false
    in
    bind f.params args;
    let spills = call_prelude st f n_args in
    call_run st f callee_frame spills
  | target -> (
    let argv = List.map (eval st frame) args in
    match target with
    | R.C_print_i64 ->
      base st 3;
      (match argv with
      | [ v ] -> st.out <- Int64.to_string (as_int v) :: st.out
      | _ -> ());
      VI 0L
    | R.C_print_f64 ->
      base st 3;
      (match argv with
      | [ v ] -> st.out <- Printf.sprintf "%.6g" (as_float v) :: st.out
      | _ -> ());
      VI 0L
    | R.C_abort -> abort "program called __abort"
    | R.C_unknown fn -> abort ("call to unknown function " ^ fn)
    | R.C_func i ->
      let f = st.rp.funcs.(i) in
      let spills = call_prelude st f n_args in
      let callee_frame = make_frame f in
      List.iter2
        (fun slot v ->
          let v = if f.instrumented then v else strip_bounds v in
          Array.unsafe_set callee_frame.vars slot v)
        f.params argv;
      call_run st f callee_frame spills)

and call_run st (f : R.func) callee_frame spills =
  let saved_sp = st.sp in
  let ret =
    match exec_list st callee_frame f.body with
    | () -> VI 0L
    | exception Return_exc v -> v
  in
  st.sp <- saved_sp;
  if spills > 0 then charge_ifp st Insn.Ldbnd spills;
  (* implicit bounds clearing on return from legacy code (§4.1.2) *)
  if f.instrumented then ret else strip_bounds ret

and exec st frame (s : R.stmt) : unit =
  match s with
  | R.Let { slot; k; e } ->
    let v =
      match k with
      | R.K_i64 -> VI (eval_i st frame e)
      | R.K_i32 -> VI (sext (eval_i st frame e) 4)
      | R.K_i16 -> VI (sext (eval_i st frame e) 2)
      | R.K_i8 -> VI (sext (eval_i st frame e) 1)
      | k -> coerce k (eval st frame e)
    in
    base st 1;
    Array.unsafe_set frame.vars slot v
  | R.Assign { slot; e } ->
    let v = eval st frame e in
    base st 1;
    if Array.unsafe_get frame.vars slot == unbound then
      abort ("assign to unbound variable " ^ frame.rf.var_names.(slot))
    else Array.unsafe_set frame.vars slot v
  | R.Decl_local { slot; size; tyid } ->
    if Int64.equal frame.local_addr.(slot) local_unset then begin
      let footprint =
        if ifp_mode st && frame.instrumented then
          Meta.Local_offset.footprint ~size
        else Ifp_util.Bits.align_up size 16
      in
      let addr =
        Ifp_util.Bits.align_down64 (Int64.sub st.sp (Int64.of_int footprint)) 16
      in
      if Int64.compare addr st.stack_limit < 0 then raise (Abort Stack_overflow);
      st.sp <- addr;
      base st 1;
      frame.local_addr.(slot) <- addr;
      frame.local_tagged.(slot) <- addr;
      frame.local_size.(slot) <- size;
      frame.local_tyid.(slot) <- tyid
    end
  | R.Store { cls = R.Cls_int; bytes; addr; v } ->
    let a = eval st frame addr in
    let raw = eval_i st frame v in
    do_store_int st frame bytes a raw
  | R.Store { cls; bytes; addr; v } ->
    let a = eval st frame addr in
    let value = eval st frame v in
    do_store st frame cls bytes a value
  | R.Store_global { g; cls = R.Cls_int; bytes; e } ->
    let raw = eval_i st frame e in
    let go = st.globals.(g) in
    charge_store st go.gaddr bytes;
    Memory.write_size st.mem go.gaddr ~bytes raw
  | R.Store_global { g; cls; bytes; e } ->
    let v = eval st frame e in
    let go = st.globals.(g) in
    charge_store st go.gaddr bytes;
    let raw = store_raw st frame cls v in
    Memory.write_size st.mem go.gaddr ~bytes raw
  | R.If (c, t, e) ->
    base st 2 (* compare + branch *);
    if not (Int64.equal (eval_i st frame c) 0L) then exec_list st frame t
    else exec_list st frame e
  | R.While (c, body) ->
    let rec loop () =
      budget_check st;
      base st 2 (* compare + branch *);
      if not (Int64.equal (eval_i st frame c) 0L) then begin
        (match exec_list st frame body with
        | () -> ()
        | exception Continue_exc -> ());
        loop ()
      end
    in
    (try loop () with Break_exc -> ())
  | R.Return None -> raise (Return_exc (VI 0L))
  | R.Return (Some e) -> raise (Return_exc (eval st frame e))
  | R.Expr e -> ignore (eval st frame e)
  | R.Free e ->
    let w, _ = as_ptr (eval st frame e) in
    let c = st.allocator.free w in
    charge_alloc_cost st c
  | R.Break -> raise Break_exc
  | R.Continue -> raise Continue_exc
  | R.Ifp_register_local { slot; site = _ } -> register_local st frame slot
  | R.Ifp_deregister_local slot -> deregister_local st frame slot
  | R.Bad_store_global { e; msg } ->
    ignore (eval st frame e);
    abort msg

and exec_list st frame = function
  | [] -> ()
  | s :: rest ->
    exec st frame s;
    exec_list st frame rest

let run ?(config = default_config) (raw_prog : Ir.program) =
  run_with ~config raw_prog ~main_body:(fun st frame mainf ->
      exec_list st frame mainf.body)
