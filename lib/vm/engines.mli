(** Engine dispatch: runs a program under the engine named by
    [config.engine]. All engines are observationally identical; see
    {!Vm.engine}. *)

val of_string : string -> Vm.engine option
(** ["vm"], ["vm-ref"], ["closure"]; [None] for anything else (CLI
    callers turn that into a usage message). *)

val to_string : Vm.engine -> string

val all : Vm.engine list
(** Every engine, in presentation order: vm, vm-ref, closure. *)

val names : string list
(** [List.map to_string all] — for usage strings. *)

val run : ?config:Vm.config -> Ifp_compiler.Ir.program -> Vm.result
(** Dispatches to {!Vm.run}, {!Vm_ref.run} or {!Vm_closure.run}
    according to [config.engine] (default config: the interpreter).
    Same contract as {!Vm.run}. *)
