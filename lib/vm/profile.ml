(* Dispatch profiler for the closure engine: per-opcode execution counts
   and self-time, collected by wrapping compiled closures with
   enter/exit probes. The clock is injected by the caller (ifp_bench
   passes a gettimeofday-based nanosecond clock) so lib/vm keeps no
   [unix] dependency. *)

(* Opcode ids: one per compiled closure kind, including the fused
   superinstructions. [op_names] is the authoritative table; the ids
   below index it. *)
let op_names =
  [|
    "const"; "var"; "binop"; "binop.i"; "cmp"; "fcmp"; "unop"; "unop.i";
    "load"; "load.i"; "addr-local"; "addr-global"; "load-global"; "gep";
    "call"; "malloc"; "cast"; "promote"; "let"; "assign"; "decl-local";
    "store"; "store-global"; "if"; "while"; "return"; "expr"; "free";
    "register-local"; "deregister-local"; "bad";
    (* fused superinstructions *)
    "gep+chk+load"; "gep+chk+load.i"; "gep+chk+store.i"; "gep+chk+store";
    "promote+chk+load";
  |]

let op_const = 0
let op_var = 1
let op_binop = 2
let op_binop_i = 3
let op_cmp = 4
let op_fcmp = 5
let op_unop = 6
let op_unop_i = 7
let op_load = 8
let op_load_i = 9
let op_addr_local = 10
let op_addr_global = 11
let op_load_global = 12
let op_gep = 13
let op_call = 14
let op_malloc = 15
let op_cast = 16
let op_promote = 17
let op_let = 18
let op_assign = 19
let op_decl_local = 20
let op_store = 21
let op_store_global = 22
let op_if = 23
let op_while = 24
let op_return = 25
let op_expr = 26
let op_free = 27
let op_register_local = 28
let op_deregister_local = 29
let op_bad = 30
let op_fused_gep_load = 31
let op_fused_gep_load_i = 32
let op_fused_gep_store_i = 33
let op_fused_gep_store = 34
let op_fused_promote_load = 35

let n_ops = Array.length op_names

type t = {
  clock : unit -> float;  (* monotonic-enough nanoseconds *)
  counts : int array;
  self_ns : float array;
  mutable stack : int array;  (* saved [cur] per nesting level *)
  mutable depth : int;
  mutable cur : int;  (* opcode currently charged, -1 at top level *)
  mutable last : float;  (* clock value at the last probe *)
}

let create ~clock =
  {
    clock;
    counts = Array.make n_ops 0;
    self_ns = Array.make n_ops 0.0;
    stack = Array.make 256 (-1);
    depth = 0;
    cur = -1;
    last = 0.0;
  }

(* Self-time attribution: at every probe the elapsed interval since the
   previous probe is charged to whatever opcode was current — so a
   parent's time excludes its children, and the sum over all opcodes is
   the total wall time between first enter and last exit. *)

let enter p k =
  let now = p.clock () in
  if p.cur >= 0 then p.self_ns.(p.cur) <- p.self_ns.(p.cur) +. (now -. p.last);
  if p.depth >= Array.length p.stack then begin
    let bigger = Array.make (2 * Array.length p.stack) (-1) in
    Array.blit p.stack 0 bigger 0 p.depth;
    p.stack <- bigger
  end;
  p.stack.(p.depth) <- p.cur;
  p.depth <- p.depth + 1;
  p.cur <- k;
  p.counts.(k) <- p.counts.(k) + 1;
  p.last <- now

let exit p =
  let now = p.clock () in
  if p.cur >= 0 then p.self_ns.(p.cur) <- p.self_ns.(p.cur) +. (now -. p.last);
  p.depth <- p.depth - 1;
  p.cur <- p.stack.(p.depth);
  p.last <- now

type row = { op : string; count : int; ns : float; share : float }

let report p =
  let total = Array.fold_left ( +. ) 0.0 p.self_ns in
  let rows = ref [] in
  Array.iteri
    (fun k c ->
      if c > 0 then
        rows :=
          {
            op = op_names.(k);
            count = c;
            ns = p.self_ns.(k);
            share = (if total > 0.0 then p.self_ns.(k) /. total else 0.0);
          }
          :: !rows)
    p.counts;
  List.sort (fun a b -> compare b.ns a.ns) !rows
