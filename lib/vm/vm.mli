(** The execution engine: interprets MiniC programs on the simulated
    machine under one of three variants, producing the dynamic event
    counts, cycle estimate and memory footprint the evaluation harness
    consumes.

    - [Baseline]: the raw (uninstrumented) program with the glibc-like
      allocator — the paper's baseline runs.
    - [Ifp]: the program is passed through {!Ifp_compiler.Instrument},
      pointers are tagged, promotes/checks execute architecturally, and
      the allocator is either [Alloc_wrapped] or [Alloc_subheap].
    - [Ifp_no_promote]: identical, except [promote] behaves as a nop
      (no metadata access, bounds cleared) — the paper's no-promote
      configuration used to isolate the promote cost (§5). *)

type variant = Rt.variant = Baseline | Ifp | Ifp_no_promote

type alloc_kind = Rt.alloc_kind =
  | Alloc_baseline
  | Alloc_wrapped
  | Alloc_subheap
  | Alloc_mixed
      (** subheap for small typed allocations, wrapped for the rest —
          the runtime-selection extension of §4.2.1 (future work) *)

(** Which execution engine runs the program. All three are
    observationally identical — same outcome, counters, traces, output —
    and differ only in host-side speed:
    - [Eng_vm]: the slot-resolved interpreter (this module; default)
    - [Eng_ref]: the frozen tree-walking oracle ({!Vm_ref})
    - [Eng_closure]: the closure-compiled engine ({!Vm_closure})

    {!Vm.run} itself always runs the interpreter regardless of this
    field; engine dispatch happens in {!Engines.run} (which the campaign
    layer's [Engine.default_runner] uses). The field is deliberately
    excluded from campaign job fingerprints: a cached result is valid
    whichever engine produced it. *)
type engine = Rt.engine = Eng_vm | Eng_ref | Eng_closure

type config = Rt.config = {
  variant : variant;
  alloc : alloc_kind;
  seed : int64;  (** MAC-key derivation seed *)
  max_cycles : int;  (** runaway-program guard *)
  narrowing : bool;
      (** [false] models hardware without the layout-table walker (the
          §5.3 area ablation): promote falls back to object bounds *)
  infer_alloc_types : bool;
      (** enable the pass's allocation-wrapper type inference (the
          §5.2.1 future-work improvement) *)
  trace_limit : int;
      (** collect the first N IFP events (promotes with outcomes, object
          registrations, the trap) into {!result.trace}; 0 = off *)
  fault_plan : Ifp_faultinject.Fault.plan option;
      (** arm a fault injector for this run ({!Ifp_faultinject.Fault});
          [None] (the default) leaves execution byte-identical to a build
          without the subsystem. Armed runs also harden promote: an
          invalid-metadata promote traps ([Mac_mismatch] /
          [Invalid_metadata]) instead of deferring detection to the
          poisoned dereference. *)
  engine : engine;
      (** which engine {!Engines.run} dispatches to; [Eng_vm] default *)
  temporal : bool;
      (** free-epoch generations (default [false]): metadata records
          carry a generation and freed flag mirrored into the pointer
          tag, allocator frees quarantine instead of recycling, and
          stale accesses trap ([Use_after_free] / [Write_to_freed] /
          [Double_free]). With it off, every encoding, cost and output
          is bit-identical to the spatial-only design. *)
}

type trace_event = Rt.trace_event =
  | T_promote of { ptr : int64; outcome : string; bounds : string }
  | T_register of { what : string; ptr : int64; size : int }
  | T_deregister of { what : string; ptr : int64 }
  | T_trap of string

val default_config : config
val baseline : config
val ifp_wrapped : config
val ifp_subheap : config
val no_promote : alloc_kind -> config

val no_narrowing : alloc_kind -> config
(** IFP with subobject narrowing disabled (object granularity only). *)

val ifp_mixed : config

(** Why a run was aborted (simulator-level, not a protection trap) —
    structured so the campaign status column and the fault classifier
    never parse message strings. *)
type abort_reason = Rt.abort_reason =
  | Budget_exhausted  (** [max_cycles] exceeded (runaway program) *)
  | Stack_overflow
  | Out_of_memory of string  (** allocator exhausted *)
  | Program_error of string  (** ill-formed IR / guest misuse at runtime *)
  | Host_failure of string
      (** harness-level failure attached by campaign plumbing (never
          produced by {!run} itself) *)

val abort_reason_string : abort_reason -> string

type outcome = Rt.outcome =
  | Finished of int64  (** [main]'s return value *)
  | Trapped of Ifp_isa.Trap.t
  | Aborted of abort_reason

type result = Rt.result = {
  outcome : outcome;
  counters : Counters.t;
  alloc_stats : Ifp_alloc.Alloc_intf.stats;
  alloc_extra : (string * int) list;
  cache_accesses : int;
  cache_misses : int;
  mem_footprint : int;
      (** heap footprint + registered-globals metadata + layout tables —
          the maximum-resident-size proxy (Fig. 12) *)
  output : string list;  (** host [__print_*] lines, in order *)
  instrument_report : Ifp_compiler.Instrument.report option;
  trace : trace_event list;
      (** first [trace_limit] IFP events (always includes a trailing
          {!T_trap} when the run trapped) *)
  fault_injections : string list;
      (** corruptions performed by the armed fault injector, in order;
          [[]] when [fault_plan = None] or the trigger never fired *)
}

val run : ?config:config -> Ifp_compiler.Ir.program -> result
(** Typechecks, instruments (for IFP variants), executes [main]. Raises
    {!Ifp_compiler.Typecheck.Type_error} on ill-typed programs; all
    runtime failures are reported in [outcome].

    Concurrency contract: [run] builds all of its state — {!Ifp_machine.Memory},
    {!Ifp_metadata.Meta}, allocator, counters — afresh per call, never
    mutates the input program (instrumentation copies it), and touches no
    library-level mutable globals, so concurrent [run]s from multiple
    domains are safe and deterministic. lib/campaign's parallel engine
    relies on this. *)
