(* The closure compiler: lowers {!Ifp_compiler.Resolve} output to trees
   of OCaml closures, one closure per node with successors pre-linked,
   so straight-line guest code runs with zero dispatch — every [match]
   the interpreter performs per execution is performed here once per
   program.

   Correctness contract: each compiled closure charges costs and bumps
   counters in {e exactly} the order {!Vm}'s [eval]/[eval_i]/[exec]
   arms do, so the engine stays bit-identical to [Vm] and [Vm_ref] on
   outcome, every counter, traces and output. Three kinds of static
   specialization are layered on top, none of which may change
   observable behaviour:

   - {b mode splitting}: [ifp_mode && instrumented] is constant per
     (config, function), so checked access, gep finish, address-of and
     declaration paths compile to their taken branch only;
   - {b superinstruction fusion}: the paper-hot sequences
     gep→check→load, gep→check→store and promote→check→load compile to
     single fused closures that keep the address word unboxed instead
     of materialising the intermediate pointer value, replicating the
     exact charge order of the unfused pair. Fused paths are only
     emitted when no fault injector is armed ([st.inj = None]) — armed
     runs keep the generic path whose [injected_bounds] hook they
     need;
   - {b inline caches}: each [Ifp_register_local] site memoizes its
     last (tyid → layout pointer) resolution, falling back to the
     per-run {!Rt.layout_ptr_of} table walk on miss (transparent:
     layout interning is idempotent host-side work with no charges).

   Compilation happens per run (inside [run_with]'s [main_body]), after
   globals setup, with the state — config, fault injector, globals —
   fully known; closure capture is the specialization mechanism. *)

open Rt

type vcode = frame -> value
type icode = frame -> int64
type ucode = frame -> unit

type env = {
  st : state;
  prof : Profile.t option;
  fbodies : ucode array;  (* compiled bodies, parallel to rp.funcs *)
  ic_tyid : int array;  (* per-site IC key: last tyid seen, -1 = empty *)
  ic_ptr : int64 array;  (* per-site IC value: resolved layout pointer *)
  mutable gb : Bounds.t;
      (* scratch: bounds produced by a fused gep address computation;
         consumed immediately by the fused access tail, before any
         other fused site can run *)
}

(* per-function compile context *)
type ctx = { env : env; instr : bool }

let nop_u : ucode = fun _ -> ()

(* ---- profile probes ------------------------------------------------- *)

let pv c k (f : vcode) : vcode =
  match c.env.prof with
  | None -> f
  | Some p ->
    fun fr ->
      Profile.enter p k;
      (match f fr with
      | v ->
        Profile.exit p;
        v
      | exception e ->
        Profile.exit p;
        raise e)

let pi c k (f : icode) : icode =
  match c.env.prof with
  | None -> f
  | Some p ->
    fun fr ->
      Profile.enter p k;
      (match f fr with
      | v ->
        Profile.exit p;
        v
      | exception e ->
        Profile.exit p;
        raise e)

let pu c k (f : ucode) : ucode =
  match c.env.prof with
  | None -> f
  | Some p ->
    fun fr ->
      Profile.enter p k;
      (match f fr with
      | () -> Profile.exit p
      | exception e ->
        Profile.exit p;
        raise e)

(* ---- call helper ---------------------------------------------------- *)

(* [charge_ifp] with the kind fixed at compile time: the counter slot
   and cycle cost become constants captured in the closure, so each
   charge is two in-place adds with no per-event kind dispatch. *)
let stage_charge_ifp st k : unit -> unit =
  let ix = Counters.kind_index k and cyc = Cost.ifp_cycles k in
  let cc = st.c in
  fun () ->
    cc.ifp.(ix) <- cc.ifp.(ix) + 1;
    cc.cycles <- cc.cycles + cyc

(* the closure-engine twin of Vm.call_run *)
let run_body st (f : R.func) (body : ucode) callee_frame spills =
  let saved_sp = st.sp in
  let ret =
    match body callee_frame with
    | () -> VI 0L
    | exception Return_exc v -> v
  in
  st.sp <- saved_sp;
  if spills > 0 then charge_ifp st Insn.Ldbnd spills;
  if f.instrumented then ret else strip_bounds ret

(* ---- fused access tails --------------------------------------------- *)

(* These replicate, inline and specialized, the tails of [Rt.do_load] /
   [Rt.do_store_int] / [Rt.do_store] on an address that never became a
   boxed value: [w'] is the (possibly tagged) pointer word, [ob] its
   bounds register. Only reachable from sites compiled when
   [st.inj = None], so the [injected_bounds] hook is a static no-op
   here.

   The bit-level pieces — the 44-bit address mask of [Tag.addr], the
   poison-bit test of [Insn.load_store_poison_check], the range test of
   [Bounds.contains] — are open-coded copies: they run on every access
   and the cross-module calls are measurable without flambda. The
   differential suite pins them against the interpreter, which still
   goes through [lib/isa]. *)

let addr_mask = Tag.addr_mask (* 44-bit virtual address *)

(* Returns the 44-bit address so the access tail does not re-mask: the
   check is the only consumer of the tagged word, every caller feeds the
   result straight into a [stage_load]/[stage_store] closure. *)
let[@inline] check_instr st w' ob ~is_store ~size : int64 =
  (* poison bits are 62-63; nonzero = Oob, Invalid or Freed. The library
     check resolves the temporal-vs-spatial trap cause on the (cold)
     poisoned path. *)
  (if Int64.to_int (Int64.shift_right_logical w' 62) land 3 <> 0 then
     if st.cfg.temporal then Insn.load_store_poison_check_temporal w' ~is_store
     else Trap.raise_trap (Trap.Poisoned_dereference w'));
  st.c.implicit_checks <- st.c.implicit_checks + 1;
  let a = Int64.logand w' addr_mask in
  (match ob with
  | Bounds.No_bounds -> ()
  | Bounds.Bounds { lo; hi } ->
    if
      not
        (Int64.compare lo a <= 0
        && Int64.compare (Int64.add a (Int64.of_int size)) hi <= 0)
    then Trap.raise_trap (Trap.Bounds_violation { ptr = w'; lo; hi; size }));
  a

(* Staged sim-cache probe: [Cache.access_line] over the exposed
   representation, with the (immutable) geometry and arrays captured at
   staging time. Returns the hit bit; counter/LRU updates are
   byte-identical to the library version. *)
let stage_cache_line (cache : Cache.t) : int -> bool =
  let smask = cache.Cache.set_mask and ways = cache.Cache.ways in
  let tags = cache.Cache.tags and lru = cache.Cache.lru in
  fun line ->
    cache.Cache.n_accesses <- cache.Cache.n_accesses + 1;
    cache.Cache.clock <- cache.Cache.clock + 1;
    let base = (line land smask) * ways in
    let rec find i =
      if i >= ways then -1
      else if Array.unsafe_get tags (base + i) = line then i
      else find (i + 1)
    in
    let i = find 0 in
    if i >= 0 then begin
      Array.unsafe_set lru (base + i) cache.Cache.clock;
      true
    end
    else begin
      cache.Cache.n_misses <- cache.Cache.n_misses + 1;
      let victim = ref 0 in
      for j = 1 to ways - 1 do
        if
          Array.unsafe_get lru (base + j)
          < Array.unsafe_get lru (base + !victim)
        then victim := j
      done;
      Array.unsafe_set tags (base + !victim) line;
      Array.unsafe_set lru (base + !victim) cache.Cache.clock;
      false
    end

let page_shift = Memory.page_shift
let page_off_mask = Memory.page_size - 1
let pcache_mask = Memory.pcache_slots - 1

(* Staged load tail, one closure per site: the static [bytes] resolves
   the size dispatch and sign-extension shape now, and the counter
   arithmetic of [charge_load] ([loads]/[base]/[mem_cycles]) is
   open-coded — the cycle adds are coalesced into one store, which is
   unobservable because nothing between them can trap. Takes the 48-bit
   address, already masked by [check_instr] (or by the call site on
   uninstrumented paths), so the tag strip happens once per access; the
   masked address fits 48 bits, so the whole line/page computation runs
   on immediate ints. The page-cache probe of [Memory.get_page] and the
   line probe of [Cache.access_range] are inlined for the common case
   (access within one page/line, page-cache hit); anything else falls
   back to the library accessors, which keep the caches warm. *)
let stage_load st bytes : int64 -> int64 =
  let cc = st.c and cache = st.cache and mem = st.mem in
  let cyc = 1 + Cost.mem in
  let pen = Cost.miss_penalty in
  let probe = stage_cache_line cache in
  let lsh = cache.Cache.line_shift in
  let lbytes = 1 lsl lsh in
  let lmask = lbytes - 1 in
  let ppno = mem.Memory.pcache_pno and ppage = mem.Memory.pcache_page in
  match bytes with
  | 8 ->
    let slow a =
      match Memory.read_u64 mem a with
      | raw -> raw
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa)
    in
    fun a ->
      cc.loads <- cc.loads + 1;
      cc.base_instrs <- cc.base_instrs + 1;
      let ai = Int64.to_int a in
      let misses =
        if (ai land lmask) + 8 <= lbytes then
          if probe (ai lsr lsh) then 0 else 1
        else Cache.access_range cache a ~bytes:8 Cache.Load
      in
      cc.cycles <- cc.cycles + cyc + (misses * pen);
      let off = ai land page_off_mask in
      if off <= page_off_mask - 7 then begin
        let pno = ai lsr page_shift in
        let slot = pno land pcache_mask in
        if Array.unsafe_get ppno slot = pno then
          Bytes.get_int64_le (Array.unsafe_get ppage slot).Memory.data off
        else slow a
      end
      else slow a
  | 4 ->
    let slow a =
      match Memory.read_u32 mem a with
      | raw -> raw
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa)
    in
    fun a ->
      cc.loads <- cc.loads + 1;
      cc.base_instrs <- cc.base_instrs + 1;
      let ai = Int64.to_int a in
      let misses =
        if (ai land lmask) + 4 <= lbytes then
          if probe (ai lsr lsh) then 0 else 1
        else Cache.access_range cache a ~bytes:4 Cache.Load
      in
      cc.cycles <- cc.cycles + cyc + (misses * pen);
      let off = ai land page_off_mask in
      if off <= page_off_mask - 3 then begin
        let pno = ai lsr page_shift in
        let slot = pno land pcache_mask in
        if Array.unsafe_get ppno slot = pno then
          Int64.logand
            (Int64.of_int32
               (Bytes.get_int32_le (Array.unsafe_get ppage slot).Memory.data
                  off))
            0xFFFFFFFFL
        else slow a
      end
      else slow a
  | 2 ->
    let slow a =
      match Memory.read_u16 mem a with
      | raw -> Int64.of_int raw
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa)
    in
    fun a ->
      cc.loads <- cc.loads + 1;
      cc.base_instrs <- cc.base_instrs + 1;
      let ai = Int64.to_int a in
      let misses =
        if (ai land lmask) + 2 <= lbytes then
          if probe (ai lsr lsh) then 0 else 1
        else Cache.access_range cache a ~bytes:2 Cache.Load
      in
      cc.cycles <- cc.cycles + cyc + (misses * pen);
      let off = ai land page_off_mask in
      if off <= page_off_mask - 1 then begin
        let pno = ai lsr page_shift in
        let slot = pno land pcache_mask in
        if Array.unsafe_get ppno slot = pno then begin
          let data = (Array.unsafe_get ppage slot).Memory.data in
          Int64.of_int
            (Char.code (Bytes.unsafe_get data off)
            lor (Char.code (Bytes.unsafe_get data (off + 1)) lsl 8))
        end
        else slow a
      end
      else slow a
  | 1 ->
    let slow a =
      match Memory.read_u8 mem a with
      | raw -> Int64.of_int raw
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa)
    in
    fun a ->
      cc.loads <- cc.loads + 1;
      cc.base_instrs <- cc.base_instrs + 1;
      let ai = Int64.to_int a in
      let misses = if probe (ai lsr lsh) then 0 else 1 in
      cc.cycles <- cc.cycles + cyc + (misses * pen);
      let pno = ai lsr page_shift in
      let slot = pno land pcache_mask in
      if Array.unsafe_get ppno slot = pno then
        Int64.of_int
          (Char.code
             (Bytes.unsafe_get
                (Array.unsafe_get ppage slot).Memory.data
                (ai land page_off_mask)))
      else slow a
  | _ ->
    fun a ->
      charge_load st a bytes;
      (match Memory.read_size mem a ~bytes with
      | raw -> raw
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa))

(* Staged store tail: same deal with [charge_store] and [write_size];
   the sub-word masks of [Memory.write_size] and the page [written] /
   [touched] bookkeeping are replicated exactly. *)
let stage_store st bytes : int64 -> int64 -> unit =
  let cc = st.c and cache = st.cache and mem = st.mem in
  let cyc = 1 + Cost.mem in
  let pen = Cost.miss_penalty in
  let probe = stage_cache_line cache in
  let lsh = cache.Cache.line_shift in
  let lbytes = 1 lsl lsh in
  let lmask = lbytes - 1 in
  let ppno = mem.Memory.pcache_pno and ppage = mem.Memory.pcache_page in
  let note_written p =
    if not p.Memory.written then begin
      p.Memory.written <- true;
      mem.Memory.touched <- mem.Memory.touched + 1
    end
  in
  match bytes with
  | 8 ->
    let slow a raw =
      match Memory.write_u64 mem a raw with
      | () -> ()
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa)
    in
    fun a raw ->
      cc.stores <- cc.stores + 1;
      cc.base_instrs <- cc.base_instrs + 1;
      let ai = Int64.to_int a in
      let misses =
        if (ai land lmask) + 8 <= lbytes then
          if probe (ai lsr lsh) then 0 else 1
        else Cache.access_range cache a ~bytes:8 Cache.Store
      in
      cc.cycles <- cc.cycles + cyc + (misses * pen);
      let off = ai land page_off_mask in
      if off <= page_off_mask - 7 then begin
        let pno = ai lsr page_shift in
        let slot = pno land pcache_mask in
        if Array.unsafe_get ppno slot = pno then begin
          let p = Array.unsafe_get ppage slot in
          note_written p;
          Bytes.set_int64_le p.Memory.data off raw
        end
        else slow a raw
      end
      else slow a raw
  | 4 ->
    let slow a raw =
      match Memory.write_u32 mem a raw with
      | () -> ()
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa)
    in
    fun a raw ->
      cc.stores <- cc.stores + 1;
      cc.base_instrs <- cc.base_instrs + 1;
      let ai = Int64.to_int a in
      let misses =
        if (ai land lmask) + 4 <= lbytes then
          if probe (ai lsr lsh) then 0 else 1
        else Cache.access_range cache a ~bytes:4 Cache.Store
      in
      cc.cycles <- cc.cycles + cyc + (misses * pen);
      let off = ai land page_off_mask in
      if off <= page_off_mask - 3 then begin
        let pno = ai lsr page_shift in
        let slot = pno land pcache_mask in
        if Array.unsafe_get ppno slot = pno then begin
          let p = Array.unsafe_get ppage slot in
          note_written p;
          Bytes.set_int32_le p.Memory.data off (Int64.to_int32 raw)
        end
        else slow a raw
      end
      else slow a raw
  | 2 ->
    let slow a ri =
      match Memory.write_u16 mem a ri with
      | () -> ()
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa)
    in
    fun a raw ->
      cc.stores <- cc.stores + 1;
      cc.base_instrs <- cc.base_instrs + 1;
      let ai = Int64.to_int a in
      let misses =
        if (ai land lmask) + 2 <= lbytes then
          if probe (ai lsr lsh) then 0 else 1
        else Cache.access_range cache a ~bytes:2 Cache.Store
      in
      cc.cycles <- cc.cycles + cyc + (misses * pen);
      let ri = Int64.to_int raw land 0xFFFF in
      let off = ai land page_off_mask in
      if off <= page_off_mask - 1 then begin
        let pno = ai lsr page_shift in
        let slot = pno land pcache_mask in
        if Array.unsafe_get ppno slot = pno then begin
          let p = Array.unsafe_get ppage slot in
          note_written p;
          let data = p.Memory.data in
          Bytes.unsafe_set data off (Char.unsafe_chr (ri land 0xFF));
          Bytes.unsafe_set data (off + 1)
            (Char.unsafe_chr ((ri lsr 8) land 0xFF))
        end
        else slow a ri
      end
      else slow a ri
  | 1 ->
    let slow a ri =
      match Memory.write_u8 mem a ri with
      | () -> ()
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa)
    in
    fun a raw ->
      cc.stores <- cc.stores + 1;
      cc.base_instrs <- cc.base_instrs + 1;
      let ai = Int64.to_int a in
      let misses = if probe (ai lsr lsh) then 0 else 1 in
      cc.cycles <- cc.cycles + cyc + (misses * pen);
      let ri = Int64.to_int raw land 0xFF in
      let pno = ai lsr page_shift in
      let slot = pno land pcache_mask in
      if Array.unsafe_get ppno slot = pno then begin
        let p = Array.unsafe_get ppage slot in
        note_written p;
        Bytes.unsafe_set p.Memory.data (ai land page_off_mask)
          (Char.unsafe_chr ri)
      end
      else slow a ri
  | _ ->
    fun a raw ->
      charge_store st a bytes;
      (match Memory.write_size mem a ~bytes raw with
      | () -> ()
      | exception Memory.Fault (_, fa) ->
        Trap.raise_trap (Trap.Memory_fault fa))

(* ---- staged tag/ISA ops --------------------------------------------- *)

(* Open-coded twins of [Insn.ifpadd] / [Insn.ifpidx] /
   [Insn.poison_from_bounds] ([Insn.ifpextract]): straight shift/mask
   int64 arithmetic with no cross-module calls — [Bits.insert] costs two
   [Bits.mask] lookups per field write without flambda, and these run on
   every fused gep. The differential suite pins them against the
   [lib/isa] originals the interpreter still uses. *)

let high_bits_mask = Int64.lognot addr_mask (* tag bits 63..44, gen included *)
let poison_clear = Int64.lognot (Int64.shift_left 3L 62)
let poison_oob = Int64.shift_left 1L 62
let poison_invalid = Int64.shift_left 2L 62
let gro_clear = Int64.lognot (Int64.shift_left 0x3FL 54)
let gran_mask = Int64.lognot (Int64.of_int (Tag.granule - 1))
let sub6_clear = Int64.lognot (Int64.shift_left 0x3FL 48)
let sub8_clear = Int64.lognot (Int64.shift_left 0xFFL 48)

let[@inline] s_poison_from_bounds p bounds =
  match bounds with
  | Bounds.No_bounds -> p
  | Bounds.Bounds { lo; hi } ->
    let a = Int64.logand p addr_mask in
    if Int64.compare lo a <= 0 && Int64.compare a hi < 0 then
      Int64.logand p poison_clear
    else Int64.logor (Int64.logand p poison_clear) poison_oob

let s_ifpadd p ~delta ~bounds =
  let old_addr = Int64.logand p addr_mask in
  let new_addr = Int64.logand (Int64.add old_addr delta) addr_mask in
  let p0 = Int64.logor (Int64.logand p high_bits_mask) new_addr in
  let p' =
    match Int64.to_int (Int64.shift_right_logical p 60) land 3 with
    | 0 -> p0 (* Legacy *)
    | 1 ->
      (* Local_offset: keep the metadata address invariant across the
         move, poisoning the pointer when it leaves reach *)
      let gro = Int64.to_int (Int64.shift_right_logical p 54) land 0x3F in
      let meta =
        Int64.add
          (Int64.logand old_addr gran_mask)
          (Int64.of_int (gro * Tag.granule))
      in
      let base = Int64.logand new_addr gran_mask in
      let diff = Int64.to_int (Int64.sub meta base) in
      if diff < 0 || diff mod Tag.granule <> 0 || diff / Tag.granule > 63 then
        Int64.logor (Int64.logand p0 poison_clear) poison_invalid
      else
        Int64.logor
          (Int64.logand p0 gro_clear)
          (Int64.shift_left (Int64.of_int (diff / Tag.granule)) 54)
    | _ -> p0 (* Subheap | Global_table *)
  in
  if Int64.to_int (Int64.shift_right_logical p' 62) land 3 >= 2 then p'
  else s_poison_from_bounds p' bounds

let s_ifpidx p delta =
  match Int64.to_int (Int64.shift_right_logical p 60) land 3 with
  | 1 ->
    (* Local_offset: 6-bit saturating subobject index *)
    let old = Int64.to_int (Int64.shift_right_logical p 48) land 0x3F in
    Int64.logor
      (Int64.logand p sub6_clear)
      (Int64.shift_left (Int64.of_int (min (old + delta) 63)) 48)
  | 2 ->
    (* Subheap: 8-bit saturating subobject index *)
    let old = Int64.to_int (Int64.shift_right_logical p 48) land 0xFF in
    Int64.logor
      (Int64.logand p sub8_clear)
      (Int64.shift_left (Int64.of_int (min (old + delta) 255)) 48)
  | _ -> p

(* value-wrapping load tail for a scalar class, sign extension staged *)
let load_tail (ld : int64 -> int64) cls bytes : int64 -> value =
  match cls with
  | R.Cls_ptr -> fun w' -> VP (ld w', Bounds.no_bounds)
  | R.Cls_f64 -> fun w' -> VF (Int64.float_of_bits (ld w'))
  | R.Cls_int ->
    if bytes = 8 then fun w' -> VI (ld w')
    else
      let sh = 64 - (bytes * 8) in
      fun w' -> VI (Int64.shift_right (Int64.shift_left (ld w') sh) sh)

(* unboxed integer load tail: [sext] with the shift staged *)
let load_tail_i (ld : int64 -> int64) bytes : int64 -> int64 =
  if bytes = 8 then ld
  else
    let sh = 64 - (bytes * 8) in
    fun w' -> Int64.shift_right (Int64.shift_left (ld w') sh) sh

(* staged twin of [Rt.store_raw]: the class dispatch and the
   [ifp_mode && instrumented] test are resolved now; only the
   per-value [VP]-with-bounds demote test remains at run time *)
let stage_store_raw st ~instr cls : value -> int64 =
  match cls with
  | R.Cls_f64 -> fun v -> Int64.bits_of_float (as_float v)
  | R.Cls_ptr ->
    if instr then
      let chg_ext = stage_charge_ifp st Insn.Ifpextract in
      function
      | VP (pw, Bounds.No_bounds) -> pw
      | VP (pw, pb) ->
        chg_ext ();
        s_poison_from_bounds pw pb
      | v -> as_int v
    else ( function VP (pw, _) -> pw | v -> as_int v)
  | R.Cls_int -> fun v -> as_int v

(* ---- static value-class analysis ------------------------------------ *)

(* [never_ptr e] is true when [e] can never evaluate to a [VP]: integer
   and float producers. Used to kill the pointer-vs-pointer branch of
   comparisons at compile time, so both operands can run through the
   unboxed integer compiler ([eval_i] is charge-identical to
   [as_int]-of-[eval] by contract). Conservative: [Var], [Call],
   promote and pointer loads stay "maybe pointer". *)
let never_ptr (e : R.expr) =
  match e with
  | R.Int _ | R.Float _ -> true
  | R.Binop
      ( ( Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Rem | Ir.BAnd | Ir.BOr
        | Ir.BXor | Ir.Shl | Ir.Shr | Ir.LAnd | Ir.LOr | Ir.Eq | Ir.Ne
        | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge | Ir.FAdd | Ir.FSub | Ir.FMul
        | Ir.FDiv | Ir.FEq | Ir.FLt | Ir.FLe ),
        _,
        _ ) ->
    true
  | R.Unop _ -> true
  | R.Load { cls = R.Cls_int | R.Cls_f64; _ } -> true
  | R.Load_global { cls = R.Cls_int | R.Cls_f64; _ } -> true
  | R.Cast { kind = R.Cast_int _ | R.Cast_f64; _ } -> true
  | _ -> false

let cmp_test : Ir.binop -> int -> bool = function
  | Ir.Eq -> fun cv -> cv = 0
  | Ir.Ne -> fun cv -> cv <> 0
  | Ir.Lt -> fun cv -> cv < 0
  | Ir.Le -> fun cv -> cv <= 0
  | Ir.Gt -> fun cv -> cv > 0
  | Ir.Ge -> fun cv -> cv >= 0
  | _ -> assert false

(* ---- the compiler --------------------------------------------------- *)

let rec compile_expr c (e : R.expr) : vcode =
  let st = c.env.st in
  match e with
  | R.Int x ->
    let v = VI x in
    pv c Profile.op_const (fun _ -> v)
  | R.Float f ->
    let v = VF f in
    pv c Profile.op_const (fun _ -> v)
  | R.Var i ->
    pv c Profile.op_var (fun fr ->
        let v = Array.unsafe_get fr.vars i in
        if v == unbound then
          abort ("unbound variable " ^ fr.rf.var_names.(i))
        else v)
  | R.Binop (Ir.LAnd, a, b) ->
    let ca = compile_expr c a and cb = compile_expr c b in
    pv c Profile.op_binop (fun fr ->
        base st 1;
        if not (truth (ca fr)) then vi_zero else vi_bool (truth (cb fr)))
  | R.Binop (Ir.LOr, a, b) ->
    let ca = compile_expr c a and cb = compile_expr c b in
    pv c Profile.op_binop (fun fr ->
        base st 1;
        if truth (ca fr) then vi_one else vi_bool (truth (cb fr)))
  | R.Binop (((Ir.Eq | Ir.Ne | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge) as op), a, b)
    when c.env.prof = None ->
    (* boxed twin of the comparison specialization: only the boolean
       result is boxed *)
    let cc = compile_cmp_bool c op a b in
    fun fr -> vi_bool (cc fr)
  | R.Binop
      ( ( Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Rem | Ir.BAnd | Ir.BOr
        | Ir.BXor | Ir.Shl | Ir.Shr ),
        _,
        _ )
    when c.env.prof = None ->
    (* integer-producing op: reuse the unboxed compiler, box once *)
    let ci = compile_expr_i c e in
    fun fr -> VI (ci fr)
  | R.Binop (((Ir.FAdd | Ir.FSub | Ir.FMul | Ir.FDiv) as op), a, b)
    when c.env.prof = None ->
    let ca = compile_expr c a and cb = compile_expr c b in
    let fpx = Cost.fp - 1 in
    (match op with
    | Ir.FAdd ->
      fun fr ->
        let vb = cb fr in
        let va = ca fr in
        base st 1;
        cycles st fpx;
        VF (as_float va +. as_float vb)
    | Ir.FSub ->
      fun fr ->
        let vb = cb fr in
        let va = ca fr in
        base st 1;
        cycles st fpx;
        VF (as_float va -. as_float vb)
    | Ir.FMul ->
      fun fr ->
        let vb = cb fr in
        let va = ca fr in
        base st 1;
        cycles st fpx;
        VF (as_float va *. as_float vb)
    | Ir.FDiv ->
      fun fr ->
        let vb = cb fr in
        let va = ca fr in
        base st 1;
        cycles st fpx;
        VF (as_float va /. as_float vb)
    | _ -> assert false)
  | R.Binop (((Ir.FEq | Ir.FLt | Ir.FLe) as op), a, b)
    when c.env.prof = None ->
    let ca = compile_expr c a and cb = compile_expr c b in
    let fpx = Cost.fp - 1 in
    (match op with
    | Ir.FEq ->
      fun fr ->
        let vb = cb fr in
        let va = ca fr in
        base st 1;
        cycles st fpx;
        vi_bool (as_float va = as_float vb)
    | Ir.FLt ->
      fun fr ->
        let vb = cb fr in
        let va = ca fr in
        base st 1;
        cycles st fpx;
        vi_bool (as_float va < as_float vb)
    | Ir.FLe ->
      fun fr ->
        let vb = cb fr in
        let va = ca fr in
        base st 1;
        cycles st fpx;
        vi_bool (as_float va <= as_float vb)
    | _ -> assert false)
  | R.Binop (op, a, b) ->
    (* reference order: the generic application evaluates b, then a *)
    let ca = compile_expr c a and cb = compile_expr c b in
    pv c Profile.op_binop (fun fr ->
        let vb = cb fr in
        let va = ca fr in
        eval_binop st op va vb)
  | R.Unop (op, a) ->
    let ca = compile_expr c a in
    pv c Profile.op_unop (fun fr -> eval_unop st op (ca fr))
  | R.Load { cls; bytes; addr } -> compile_load c cls bytes addr
  | R.Addr_local slot ->
    if c.instr then
      let chg_bnd = stage_charge_ifp st Insn.Ifpbnd in
      pv c Profile.op_addr_local (fun fr ->
          base st 1;
          let addr = fr.local_addr.(slot) in
          if Int64.equal addr local_unset then
            abort ("address of unknown local " ^ fr.rf.local_names.(slot))
          else begin
            chg_bnd ();
            VP
              ( fr.local_tagged.(slot),
                Bounds.of_base_size addr fr.local_size.(slot) )
          end)
    else
      pv c Profile.op_addr_local (fun fr ->
          base st 1;
          let addr = fr.local_addr.(slot) in
          if Int64.equal addr local_unset then
            abort ("address of unknown local " ^ fr.rf.local_names.(slot))
          else VP (addr, Bounds.no_bounds))
  | R.Addr_global g ->
    (* globals are fully set up before compilation runs *)
    let go = st.globals.(g) in
    if c.instr then
      let chg_bnd = stage_charge_ifp st Insn.Ifpbnd in
      pv c Profile.op_addr_global (fun _ ->
          base st 5;
          chg_bnd ();
          VP (go.gtagged, go.gbounds))
    else
      pv c Profile.op_addr_global (fun _ ->
          base st 1;
          VP (go.gaddr, Bounds.no_bounds))
  | R.Load_global { g; cls; bytes } ->
    (* the global's address is static: the staged access tail runs on
       the pre-masked address, like any fused load *)
    let go = st.globals.(g) in
    let tail = load_tail (stage_load st bytes) cls bytes in
    let ga = Int64.logand go.gaddr addr_mask in
    pv c Profile.op_load_global (fun _ -> tail ga)
  | R.Gep { base = gbase; steps; idx_delta; site = _ } ->
    compile_gep c gbase steps idx_delta
  | R.Call { target; args; n_args } -> compile_call c target args n_args
  | R.Malloc { scale; count; cty; layout_multi } ->
    let cc = compile_expr_i c count in
    pv c Profile.op_malloc (fun fr ->
        let n = Int64.to_int (cc fr) in
        do_malloc st fr ~size:(max 1 n * scale) ~cty ~layout_multi)
  | R.Cast { kind; e } -> (
    let ce = compile_expr c e in
    match kind with
    | R.Cast_ptr ->
      pv c Profile.op_cast (fun fr ->
          match ce fr with
          | VI w ->
            if Int64.equal w 0L then null_ptr else VP (w, Bounds.no_bounds)
          | VP _ as v -> v
          | VF _ -> abort "float to pointer cast")
    | R.Cast_f64 ->
      pv c Profile.op_cast (fun fr ->
          let v = ce fr in
          base st 1;
          VF (as_float v))
    | R.Cast_int n ->
      pv c Profile.op_cast (fun fr ->
          match ce fr with
          | VF f ->
            base st 1;
            VI (Int64.of_float f)
          | v -> VI (sext (as_int v) n)))
  | R.Ifp_promote { e; site = _ } ->
    let ce = compile_expr c e in
    pv c Profile.op_promote (fun fr -> eval_promote st (ce fr))
  | R.Bad msg -> pv c Profile.op_bad (fun _ -> abort msg)

(* Unboxed integer compilation: the staged twin of [Vm.eval_i], used in
   the same contexts (conditions, integer arithmetic, gep indexes,
   malloc counts, integer stores) so charges and failure order stay
   identical per context. *)
and compile_expr_i c (e : R.expr) : icode =
  let st = c.env.st in
  match e with
  | R.Int x -> pi c Profile.op_const (fun _ -> x)
  | R.Var i ->
    pi c Profile.op_var (fun fr ->
        let v = Array.unsafe_get fr.vars i in
        if v == unbound then
          abort ("unbound variable " ^ fr.rf.var_names.(i))
        else as_int v)
  | R.Binop (Ir.LAnd, a, b) ->
    let ca = compile_expr_i c a and cb = compile_expr_i c b in
    pi c Profile.op_binop_i (fun fr ->
        base st 1;
        if Int64.equal (ca fr) 0L then 0L
        else if Int64.equal (cb fr) 0L then 0L
        else 1L)
  | R.Binop (Ir.LOr, a, b) ->
    let ca = compile_expr_i c a and cb = compile_expr_i c b in
    pi c Profile.op_binop_i (fun fr ->
        base st 1;
        if not (Int64.equal (ca fr) 0L) then 1L
        else if Int64.equal (cb fr) 0L then 0L
        else 1L)
  | R.Binop
      ( (( Ir.Add | Ir.Sub | Ir.Mul | Ir.Div | Ir.Rem | Ir.BAnd | Ir.BOr
         | Ir.BXor | Ir.Shl | Ir.Shr ) as op),
        a,
        b ) ->
    let ca = compile_expr_i c a and cb = compile_expr_i c b in
    pi c Profile.op_binop_i
      (match op with
      | Ir.Add ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          base st 1;
          Int64.add x y
      | Ir.Sub ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          base st 1;
          Int64.sub x y
      | Ir.Mul ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          cycles st (Cost.mul - 1);
          base st 1;
          Int64.mul x y
      | Ir.Div ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          cycles st (Cost.div - 1);
          if Int64.equal y 0L then abort "division by zero";
          base st 1;
          Int64.div x y
      | Ir.Rem ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          cycles st (Cost.div - 1);
          if Int64.equal y 0L then abort "remainder by zero";
          base st 1;
          Int64.rem x y
      | Ir.BAnd ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          base st 1;
          Int64.logand x y
      | Ir.BOr ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          base st 1;
          Int64.logor x y
      | Ir.BXor ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          base st 1;
          Int64.logxor x y
      | Ir.Shl ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          base st 1;
          Int64.shift_left x (Int64.to_int y land 63)
      | Ir.Shr ->
        fun fr ->
          let y = cb fr in
          let x = ca fr in
          base st 1;
          Int64.shift_right_logical x (Int64.to_int y land 63)
      | _ -> assert false)
  | R.Unop (((Ir.Neg | Ir.BNot | Ir.LNot) as op), a) ->
    let ca = compile_expr_i c a in
    pi c Profile.op_unop_i
      (match op with
      | Ir.Neg ->
        fun fr ->
          let x = ca fr in
          base st 1;
          Int64.neg x
      | Ir.BNot ->
        fun fr ->
          let x = ca fr in
          base st 1;
          Int64.lognot x
      | Ir.LNot ->
        fun fr ->
          let x = ca fr in
          base st 1;
          if Int64.equal x 0L then 1L else 0L
      | _ -> assert false)
  | R.Load { cls = R.Cls_int; bytes; addr } -> compile_load_int c bytes addr
  | R.Load_global { g; cls = R.Cls_int; bytes } when c.env.prof = None ->
    (* unboxed twin of the staged global load *)
    let go = c.env.st.globals.(g) in
    let tail = load_tail_i (stage_load c.env.st bytes) bytes in
    let ga = Int64.logand go.gaddr addr_mask in
    fun _ -> tail ga
  | R.Binop (((Ir.Eq | Ir.Ne | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge) as op), a, b) ->
    if c.env.prof = None then
      let cc = compile_cmp_bool c op a b in
      fun fr -> if cc fr then 1L else 0L
    else
      (* probed generic path so profiling sees operand dispatches *)
      let test = cmp_test op in
      let ca = compile_expr c a and cb = compile_expr c b in
      pi c Profile.op_cmp (fun fr ->
          let vb = cb fr in
          let va = ca fr in
          base st 1;
          let cv =
            match (va, vb) with
            | VP (wa, _), VP (wb, _) ->
              Int64.compare (Tag.addr wa) (Tag.addr wb)
            | _ -> Int64.compare (as_int va) (as_int vb)
          in
          if test cv then 1L else 0L)
  | R.Binop (((Ir.FEq | Ir.FLt | Ir.FLe) as op), a, b) ->
    let ca = compile_expr c a and cb = compile_expr c b in
    let test : float -> float -> bool =
      match op with
      | Ir.FEq -> ( = )
      | Ir.FLt -> ( < )
      | Ir.FLe -> ( <= )
      | _ -> assert false
    in
    pi c Profile.op_fcmp (fun fr ->
        let vb = cb fr in
        let va = ca fr in
        base st 1;
        cycles st (Cost.fp - 1);
        let y = as_float vb in
        let x = as_float va in
        if test x y then 1L else 0L)
  | e ->
    let ce = compile_expr c e in
    fun fr -> as_int (ce fr)

(* Comparison compilation to a boolean closure, with the per-site test
   staged as three acceptance booleans over the sign of [Int64.compare]
   (no test closure to call at run time) and leaf operands (Var / Int)
   read inline. Handles every comparison shape: when one side is an
   integer literal or provably non-pointer the VP/VP address-compare
   branch is compiled away, otherwise it is kept. Only used when
   profiling is off (callers fall back to probed generic code). *)
and compile_cmp_bool c op a b : frame -> bool =
  let st = c.env.st in
  let an, az, ap =
    match op with
    | Ir.Eq -> (false, true, false)
    | Ir.Ne -> (true, false, true)
    | Ir.Lt -> (true, false, false)
    | Ir.Le -> (true, true, false)
    | Ir.Gt -> (false, false, true)
    | Ir.Ge -> (false, true, true)
    | _ -> assert false
  in
  match (a, b) with
  | R.Var ia, R.Int y ->
    (* literal rhs is VI, so the VP/VP branch is dead *)
    fun fr ->
      let va = Array.unsafe_get fr.vars ia in
      if va == unbound then
        abort ("unbound variable " ^ fr.rf.var_names.(ia));
      let x = as_int va in
      base st 1;
      let cv = Int64.compare x y in
      if cv < 0 then an else if cv = 0 then az else ap
  | R.Int x, R.Var ib ->
    fun fr ->
      let vb = Array.unsafe_get fr.vars ib in
      if vb == unbound then
        abort ("unbound variable " ^ fr.rf.var_names.(ib));
      let y = as_int vb in
      base st 1;
      let cv = Int64.compare x y in
      if cv < 0 then an else if cv = 0 then az else ap
  | R.Var ia, R.Var ib ->
    (* both sides may be pointers: keep the address-compare branch,
       but read the slots inline (b first, as the reference does) *)
    fun fr ->
      let vb = Array.unsafe_get fr.vars ib in
      if vb == unbound then
        abort ("unbound variable " ^ fr.rf.var_names.(ib));
      let va = Array.unsafe_get fr.vars ia in
      if va == unbound then
        abort ("unbound variable " ^ fr.rf.var_names.(ia));
      base st 1;
      let cv =
        match (va, vb) with
        | VP (wa, _), VP (wb, _) -> Int64.compare (Tag.addr wa) (Tag.addr wb)
        | _ -> Int64.compare (as_int va) (as_int vb)
      in
      if cv < 0 then an else if cv = 0 then az else ap
  | a, R.Int y ->
    let ca = compile_expr_i c a in
    fun fr ->
      let x = ca fr in
      base st 1;
      let cv = Int64.compare x y in
      if cv < 0 then an else if cv = 0 then az else ap
  | a, b when never_ptr a || never_ptr b ->
    let ca = compile_expr_i c a and cb = compile_expr_i c b in
    fun fr ->
      let y = cb fr in
      let x = ca fr in
      base st 1;
      let cv = Int64.compare x y in
      if cv < 0 then an else if cv = 0 then az else ap
  | a, b ->
    let ca = compile_expr c a and cb = compile_expr c b in
    fun fr ->
      let vb = cb fr in
      let va = ca fr in
      base st 1;
      let cv =
        match (va, vb) with
        | VP (wa, _), VP (wb, _) -> Int64.compare (Tag.addr wa) (Tag.addr wb)
        | _ -> Int64.compare (as_int va) (as_int vb)
      in
      if cv < 0 then an else if cv = 0 then az else ap

(* Boolean condition compilation for [If]/[While]: same closure as
   [compile_expr_i] followed by a zero test, but a comparison skips the
   0L/1L materialization and returns the test result directly. Kept
   generic under profiling so the dispatch histogram still sees the
   condition's [op_cmp] probe. *)
and compile_cond c (e : R.expr) : frame -> bool =
  match e with
  | R.Binop (((Ir.Eq | Ir.Ne | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge) as op), a, b)
    when c.env.prof = None ->
    compile_cmp_bool c op a b
  | e ->
    let cc = compile_expr_i c e in
    fun fr -> not (Int64.equal (cc fr) 0L)

(* ---- gep ------------------------------------------------------------ *)

(* Fused gep address computation: compiles the hot single-step shapes to
   a closure returning the result pointer word (and writing its bounds
   register to [env.gb]) without boxing a value — replicating
   [Vm.eval_gep]+[Rt.gep_finish] charge-for-charge. [None] when the
   shape is not fusable or a fault injector is armed. *)
and compile_gep_addr c gbase steps idx_delta : (frame -> int64) option =
  let st = c.env.st in
  let env = c.env in
  if st.inj <> None then None
  else
    let cb = compile_expr c gbase in
    (* charge_ifp with the kind static: the counter slot and cycle cost
       are compile-time constants, so each charge is two array/field adds
       instead of a kind_index dispatch per executed gep. *)
    let ix_add = Counters.kind_index Insn.Ifpadd
    and cyc_add = Cost.ifp_cycles Insn.Ifpadd
    and ix_idx = Counters.kind_index Insn.Ifpidx
    and cyc_idx = Cost.ifp_cycles Insn.Ifpidx
    and ix_bnd = Counters.kind_index Insn.Ifpbnd
    and cyc_bnd = Cost.ifp_cycles Insn.Ifpbnd in
    let cc = st.c in
    let finish_instr w b ~delta ~nb_lo ~nb_hi ~have_nb =
      let out_bounds =
        match b with
        | Bounds.No_bounds -> Bounds.no_bounds
        | _ -> if have_nb then Bounds.make ~lo:nb_lo ~hi:nb_hi else b
      in
      cc.ifp.(ix_add) <- cc.ifp.(ix_add) + 1;
      cc.cycles <- cc.cycles + cyc_add;
      let w' = s_ifpadd w ~delta ~bounds:out_bounds in
      let w' =
        if idx_delta > 0 then begin
          cc.ifp.(ix_idx) <- cc.ifp.(ix_idx) + 1;
          cc.cycles <- cc.cycles + cyc_idx;
          s_ifpidx w' idx_delta
        end
        else w'
      in
      if not (Bounds.equal out_bounds b) then begin
        cc.ifp.(ix_bnd) <- cc.ifp.(ix_bnd) + 1;
        cc.cycles <- cc.cycles + cyc_bnd
      end;
      env.gb <- out_bounds;
      w'
    in
    match steps with
    | [] ->
      if c.instr then
        Some
          (fun fr ->
            match cb fr with
            | VP (w, b) ->
              finish_instr w b ~delta:0L ~nb_lo:0L ~nb_hi:0L ~have_nb:false
            | VI w ->
              finish_instr w Bounds.no_bounds ~delta:0L ~nb_lo:0L ~nb_hi:0L
                ~have_nb:false
            | VF _ -> abort "float used as pointer")
      else
        Some
          (fun fr ->
            let w =
              match cb fr with
              | VP (w, _) | VI w -> w
              | VF _ -> abort "float used as pointer"
            in
            env.gb <- Bounds.no_bounds;
            w)
    | [ R.Rs_field { off; fsize } ] ->
      let offL = Int64.of_int off and fsizeL = Int64.of_int fsize in
      if c.instr then
        Some
          (fun fr ->
            let v = cb fr in
            let w =
              match v with
              | VP (w, _) | VI w -> w
              | VF _ -> abort "float used as pointer"
            in
            let b = match v with VP (_, b) -> b | _ -> Bounds.no_bounds in
            let lo = Int64.add (Tag.addr w) offL in
            finish_instr w b ~delta:offL ~nb_lo:lo ~nb_hi:(Int64.add lo fsizeL)
              ~have_nb:true)
      else
        Some
          (fun fr ->
            let w =
              match cb fr with
              | VP (w, _) | VI w -> w
              | VF _ -> abort "float used as pointer"
            in
            env.gb <- Bounds.no_bounds;
            Int64.add w offL)
    | [ R.Rs_index { esize; idx } ] ->
      let ci = compile_expr_i c idx in
      let esizeL = Int64.of_int esize in
      if c.instr then
        Some
          (fun fr ->
            let v = cb fr in
            let w =
              match v with
              | VP (w, _) | VI w -> w
              | VF _ -> abort "float used as pointer"
            in
            let b = match v with VP (_, b) -> b | _ -> Bounds.no_bounds in
            let k = ci fr in
            (* dyn = 1: the index mul stays ordinary ALU work *)
            st.c.base_instrs <- st.c.base_instrs + 1;
            cycles st Cost.mul;
            finish_instr w b
              ~delta:(Int64.mul k esizeL)
              ~nb_lo:0L ~nb_hi:0L ~have_nb:false)
      else
        Some
          (fun fr ->
            let w =
              match cb fr with
              | VP (w, _) | VI w -> w
              | VF _ -> abort "float used as pointer"
            in
            let k = ci fr in
            st.c.base_instrs <- st.c.base_instrs + 2;
            cycles st (Cost.mul + Cost.alu);
            Int64.add w (Int64.mul k esizeL))
    | _ -> None

(* generic gep producing a boxed pointer value (the non-fused path and
   any multi-step walk) *)
and compile_gep c gbase steps idx_delta : vcode =
  let st = c.env.st in
  let cb = compile_expr c gbase in
  pv c Profile.op_gep
    (match steps with
    | [] ->
      fun fr ->
        let v = cb fr in
        let w =
          match v with
          | VP (w, _) | VI w -> w
          | VF _ -> abort "float used as pointer"
        in
        let b = match v with VP (_, b) -> b | _ -> Bounds.no_bounds in
        gep_finish st fr w b idx_delta ~delta:0L ~dyn:0 ~nb_lo:0L ~nb_hi:0L
          ~have_nb:false
    | [ R.Rs_field { off; fsize } ] ->
      let offL = Int64.of_int off and fsizeL = Int64.of_int fsize in
      fun fr ->
        let v = cb fr in
        let w =
          match v with
          | VP (w, _) | VI w -> w
          | VF _ -> abort "float used as pointer"
        in
        let b = match v with VP (_, b) -> b | _ -> Bounds.no_bounds in
        let lo = Int64.add (Tag.addr w) offL in
        gep_finish st fr w b idx_delta ~delta:offL ~dyn:0 ~nb_lo:lo
          ~nb_hi:(Int64.add lo fsizeL) ~have_nb:true
    | [ R.Rs_index { esize; idx } ] ->
      let ci = compile_expr_i c idx in
      let esizeL = Int64.of_int esize in
      fun fr ->
        let v = cb fr in
        let w =
          match v with
          | VP (w, _) | VI w -> w
          | VF _ -> abort "float used as pointer"
        in
        let b = match v with VP (_, b) -> b | _ -> Bounds.no_bounds in
        let k = ci fr in
        gep_finish st fr w b idx_delta
          ~delta:(Int64.mul k esizeL)
          ~dyn:1 ~nb_lo:0L ~nb_hi:0L ~have_nb:false
    | steps ->
      let csteps =
        List.map
          (function
            | R.Rs_field { off; fsize } -> `F (Int64.of_int off, Int64.of_int fsize)
            | R.Rs_index { esize; idx } ->
              `I (Int64.of_int esize, compile_expr_i c idx)
            | R.Rs_bad msg -> `B msg)
          steps
      in
      fun fr ->
        let v = cb fr in
        let w =
          match v with
          | VP (w, _) | VI w -> w
          | VF _ -> abort "float used as pointer"
        in
        let b = match v with VP (_, b) -> b | _ -> Bounds.no_bounds in
        let addr0 = Tag.addr w in
        let rec walk cs addr nb_lo nb_hi have_nb dyn =
          match cs with
          | [] -> (addr, nb_lo, nb_hi, have_nb, dyn)
          | `F (offL, fsizeL) :: rest ->
            let a' = Int64.add addr offL in
            walk rest a' a' (Int64.add a' fsizeL) true dyn
          | `I (esizeL, ci) :: rest ->
            let k = ci fr in
            walk rest (Int64.add addr (Int64.mul k esizeL)) nb_lo nb_hi have_nb
              (dyn + 1)
          | `B msg :: _ -> abort msg
        in
        let addr, nb_lo, nb_hi, have_nb, dyn = walk csteps addr0 0L 0L false 0 in
        gep_finish st fr w b idx_delta
          ~delta:(Int64.sub addr addr0)
          ~dyn ~nb_lo ~nb_hi ~have_nb)

(* ---- loads (with fusion) -------------------------------------------- *)

and compile_load c cls bytes addr : vcode =
  let st = c.env.st in
  let env = c.env in
  match addr with
  | R.Gep { base = gbase; steps; idx_delta; site = _ } -> (
    match compile_gep_addr c gbase steps idx_delta with
    | Some ga ->
      (* gep→check→load superinstruction *)
      let tail = load_tail (stage_load st bytes) cls bytes in
      if c.instr then
        pv c Profile.op_fused_gep_load (fun fr ->
            let w' = ga fr in
            let ob = env.gb in
            tail (check_instr st w' ob ~is_store:false ~size:bytes))
      else
        pv c Profile.op_fused_gep_load (fun fr ->
            tail (Int64.logand (ga fr) addr_mask))
    | None -> compile_load_generic c cls bytes addr)
  | R.Ifp_promote { e; site = _ } when st.inj = None ->
    (* promote→check→load superinstruction *)
    let ce = compile_expr c e in
    let tail = load_tail (stage_load st bytes) cls bytes in
    if c.instr then
      pv c Profile.op_fused_promote_load (fun fr ->
          let w, b =
            match eval_promote st (ce fr) with
            | VP (w, b) -> (w, b)
            | VI w -> (w, Bounds.no_bounds)
            | VF _ -> abort "float used as pointer"
          in
          tail (check_instr st w b ~is_store:false ~size:bytes))
    else
      pv c Profile.op_fused_promote_load (fun fr ->
          let w =
            match eval_promote st (ce fr) with
            | VP (w, _) | VI w -> w
            | VF _ -> abort "float used as pointer"
          in
          tail (Int64.logand w addr_mask))
  | addr -> compile_load_generic c cls bytes addr

and compile_load_generic c cls bytes addr : vcode =
  let st = c.env.st in
  let ca = compile_expr c addr in
  if st.inj <> None then
    pv c Profile.op_load (fun fr -> do_load st fr cls bytes (ca fr))
  else
    (* staged twin of [Rt.do_load]: the [as_ptr] split, the checked
       access (static per mode), then the staged load tail *)
    let tail = load_tail (stage_load st bytes) cls bytes in
    if c.instr then
      pv c Profile.op_load (fun fr ->
          match ca fr with
          | VP (w, b) -> tail (check_instr st w b ~is_store:false ~size:bytes)
          | VI w -> tail (check_instr st w Bounds.No_bounds ~is_store:false ~size:bytes)
          | VF _ -> abort "float used as pointer")
    else
      pv c Profile.op_load (fun fr ->
          match ca fr with
          | VP (w, _) | VI w -> tail (Int64.logand w addr_mask)
          | VF _ -> abort "float used as pointer")

(* the [eval_i] integer-load context: same fusion, unboxed result *)
and compile_load_int c bytes addr : icode =
  let st = c.env.st in
  let env = c.env in
  match addr with
  | R.Gep { base = gbase; steps; idx_delta; site = _ } -> (
    match compile_gep_addr c gbase steps idx_delta with
    | Some ga ->
      let tail = load_tail_i (stage_load st bytes) bytes in
      if c.instr then
        pi c Profile.op_fused_gep_load_i (fun fr ->
            let w' = ga fr in
            let ob = env.gb in
            tail (check_instr st w' ob ~is_store:false ~size:bytes))
      else
        pi c Profile.op_fused_gep_load_i (fun fr ->
            tail (Int64.logand (ga fr) addr_mask))
    | None -> compile_load_int_generic c bytes addr)
  | addr -> compile_load_int_generic c bytes addr

and compile_load_int_generic c bytes addr : icode =
  let st = c.env.st in
  let ca = compile_expr c addr in
  if st.inj <> None then
    pi c Profile.op_load_i (fun fr -> do_load_int st fr bytes (ca fr))
  else
    let tail = load_tail_i (stage_load st bytes) bytes in
    if c.instr then
      pi c Profile.op_load_i (fun fr ->
          match ca fr with
          | VP (w, b) -> tail (check_instr st w b ~is_store:false ~size:bytes)
          | VI w -> tail (check_instr st w Bounds.No_bounds ~is_store:false ~size:bytes)
          | VF _ -> abort "float used as pointer")
    else
      pi c Profile.op_load_i (fun fr ->
          match ca fr with
          | VP (w, _) | VI w -> tail (Int64.logand w addr_mask)
          | VF _ -> abort "float used as pointer")

(* staged twins of [Rt.do_store_int] / [Rt.do_store] for non-fused
   store addresses; generic [do_store*] kept when an injector is armed *)
and compile_store_int_generic c bytes addr v next : ucode =
  let st = c.env.st in
  let ca = compile_expr c addr and cv = compile_expr_i c v in
  if st.inj <> None then
    pu c Profile.op_store (fun fr ->
        let a = ca fr in
        let raw = cv fr in
        do_store_int st fr bytes a raw;
        next fr)
  else
    let stw = stage_store st bytes in
    if c.instr then
      pu c Profile.op_store (fun fr ->
          let a = ca fr in
          let raw = cv fr in
          (match a with
          | VP (w, b) -> stw (check_instr st w b ~is_store:true ~size:bytes) raw
          | VI w -> stw (check_instr st w Bounds.No_bounds ~is_store:true ~size:bytes) raw
          | VF _ -> abort "float used as pointer");
          next fr)
    else
      pu c Profile.op_store (fun fr ->
          let a = ca fr in
          let raw = cv fr in
          (match a with
          | VP (w, _) | VI w -> stw (Int64.logand w addr_mask) raw
          | VF _ -> abort "float used as pointer");
          next fr)

and compile_store_generic c cls bytes addr v next : ucode =
  let st = c.env.st in
  let ca = compile_expr c addr and cv = compile_expr c v in
  if st.inj <> None then
    pu c Profile.op_store (fun fr ->
        let a = ca fr in
        let value = cv fr in
        do_store st fr cls bytes a value;
        next fr)
  else
    let stw = stage_store st bytes in
    let sraw = stage_store_raw st ~instr:c.instr cls in
    if c.instr then
      pu c Profile.op_store (fun fr ->
          let a = ca fr in
          let value = cv fr in
          (match a with
          | VP (w, b) ->
            let ma = check_instr st w b ~is_store:true ~size:bytes in
            stw ma (sraw value)
          | VI w ->
            let ma = check_instr st w Bounds.No_bounds ~is_store:true ~size:bytes in
            stw ma (sraw value)
          | VF _ -> abort "float used as pointer");
          next fr)
    else
      pu c Profile.op_store (fun fr ->
          let a = ca fr in
          let value = cv fr in
          (match a with
          | VP (w, _) | VI w -> stw (Int64.logand w addr_mask) (sraw value)
          | VF _ -> abort "float used as pointer");
          next fr)

(* ---- calls ---------------------------------------------------------- *)

and compile_call c target args n_args : vcode =
  let st = c.env.st in
  let env = c.env in
  match target with
  | R.C_func i when List.compare_lengths (st.rp.funcs.(i)).R.params args = 0 ->
    (* arity matches: evaluate arguments straight into the callee's
       slots, then prelude, then the compiled body (fetched at call
       time — the callee may compile after this site). *)
    let f = st.rp.funcs.(i) in
    let strip = not f.instrumented in
    (* stage the bounds-strip decision out of the call path: wrap the
       argument code itself for legacy (uninstrumented) callees *)
    let carg a =
      let ce = compile_expr c a in
      if strip then fun fr -> strip_bounds (ce fr) else ce
    in
    let binds =
      Array.of_list (List.map2 (fun p a -> (p, carg a)) f.params args)
    in
    (* unroll the common small arities into straight-line slot writes *)
    pv c Profile.op_call
      (match binds with
      | [||] ->
        fun _ ->
          let callee_frame = make_frame f in
          let spills = call_prelude st f n_args in
          run_body st f (Array.unsafe_get env.fbodies i) callee_frame spills
      | [| (p0, ce0) |] ->
        fun fr ->
          let callee_frame = make_frame f in
          Array.unsafe_set callee_frame.vars p0 (ce0 fr);
          let spills = call_prelude st f n_args in
          run_body st f (Array.unsafe_get env.fbodies i) callee_frame spills
      | [| (p0, ce0); (p1, ce1) |] ->
        fun fr ->
          let callee_frame = make_frame f in
          Array.unsafe_set callee_frame.vars p0 (ce0 fr);
          Array.unsafe_set callee_frame.vars p1 (ce1 fr);
          let spills = call_prelude st f n_args in
          run_body st f (Array.unsafe_get env.fbodies i) callee_frame spills
      | [| (p0, ce0); (p1, ce1); (p2, ce2) |] ->
        fun fr ->
          let callee_frame = make_frame f in
          Array.unsafe_set callee_frame.vars p0 (ce0 fr);
          Array.unsafe_set callee_frame.vars p1 (ce1 fr);
          Array.unsafe_set callee_frame.vars p2 (ce2 fr);
          let spills = call_prelude st f n_args in
          run_body st f (Array.unsafe_get env.fbodies i) callee_frame spills
      | binds ->
        let n_binds = Array.length binds in
        fun fr ->
          let callee_frame = make_frame f in
          for j = 0 to n_binds - 1 do
            let p, ce = Array.unsafe_get binds j in
            Array.unsafe_set callee_frame.vars p (ce fr)
          done;
          let spills = call_prelude st f n_args in
          run_body st f (Array.unsafe_get env.fbodies i) callee_frame spills)
  | target -> (
    let cargs = List.map (compile_expr c) args in
    match target with
    | R.C_print_i64 ->
      pv c Profile.op_call (fun fr ->
          let argv = List.map (fun ce -> ce fr) cargs in
          base st 3;
          (match argv with
          | [ v ] -> st.out <- Int64.to_string (as_int v) :: st.out
          | _ -> ());
          VI 0L)
    | R.C_print_f64 ->
      pv c Profile.op_call (fun fr ->
          let argv = List.map (fun ce -> ce fr) cargs in
          base st 3;
          (match argv with
          | [ v ] -> st.out <- Printf.sprintf "%.6g" (as_float v) :: st.out
          | _ -> ());
          VI 0L)
    | R.C_abort ->
      pv c Profile.op_call (fun fr ->
          let argv = List.map (fun ce -> ce fr) cargs in
          ignore argv;
          abort "program called __abort")
    | R.C_unknown fn ->
      pv c Profile.op_call (fun fr ->
          let argv = List.map (fun ce -> ce fr) cargs in
          ignore argv;
          abort ("call to unknown function " ^ fn))
    | R.C_func i ->
      (* arity mismatch: keep the reference path, including its
         [Invalid_argument] after evaluating every argument *)
      pv c Profile.op_call (fun fr ->
          let argv = List.map (fun ce -> ce fr) cargs in
          let f = st.rp.funcs.(i) in
          let spills = call_prelude st f n_args in
          let callee_frame = make_frame f in
          List.iter2
            (fun slot v ->
              let v = if f.instrumented then v else strip_bounds v in
              Array.unsafe_set callee_frame.vars slot v)
            f.params argv;
          run_body st f (Array.unsafe_get env.fbodies i) callee_frame spills))

(* ---- statements ----------------------------------------------------- *)

(* [compile_stmt c s next] returns the closure for [s] with its
   successor [next] pre-linked: straight-line code is one tail call per
   statement, no dispatch. *)
and compile_stmt c (s : R.stmt) (next : ucode) : ucode =
  let st = c.env.st in
  let env = c.env in
  match s with
  | R.Let { slot; k; e } -> (
    match k with
    | R.K_i64 ->
      let ce = compile_expr_i c e in
      pu c Profile.op_let (fun fr ->
          let x = ce fr in
          base st 1;
          Array.unsafe_set fr.vars slot (VI x);
          next fr)
    | R.K_i32 ->
      let ce = compile_expr_i c e in
      pu c Profile.op_let (fun fr ->
          let x = ce fr in
          base st 1;
          Array.unsafe_set fr.vars slot (VI (sext x 4));
          next fr)
    | R.K_i16 ->
      let ce = compile_expr_i c e in
      pu c Profile.op_let (fun fr ->
          let x = ce fr in
          base st 1;
          Array.unsafe_set fr.vars slot (VI (sext x 2));
          next fr)
    | R.K_i8 ->
      let ce = compile_expr_i c e in
      pu c Profile.op_let (fun fr ->
          let x = ce fr in
          base st 1;
          Array.unsafe_set fr.vars slot (VI (sext x 1));
          next fr)
    | k ->
      let ce = compile_expr c e in
      pu c Profile.op_let (fun fr ->
          let v = coerce k (ce fr) in
          base st 1;
          Array.unsafe_set fr.vars slot v;
          next fr))
  | R.Assign { slot; e } ->
    let ce = compile_expr c e in
    pu c Profile.op_assign (fun fr ->
        let v = ce fr in
        base st 1;
        if Array.unsafe_get fr.vars slot == unbound then
          abort ("assign to unbound variable " ^ fr.rf.var_names.(slot))
        else Array.unsafe_set fr.vars slot v;
        next fr)
  | R.Decl_local { slot; size; tyid } ->
    let footprint =
      if c.instr then Meta.Local_offset.footprint ~size
      else Ifp_util.Bits.align_up size 16
    in
    pu c Profile.op_decl_local (fun fr ->
        (if Int64.equal fr.local_addr.(slot) local_unset then begin
           let addr =
             Ifp_util.Bits.align_down64
               (Int64.sub st.sp (Int64.of_int footprint))
               16
           in
           if Int64.compare addr st.stack_limit < 0 then
             raise (Abort Stack_overflow);
           st.sp <- addr;
           base st 1;
           fr.local_addr.(slot) <- addr;
           fr.local_tagged.(slot) <- addr;
           fr.local_size.(slot) <- size;
           fr.local_tyid.(slot) <- tyid
         end);
        next fr)
  | R.Store { cls = R.Cls_int; bytes; addr; v } -> (
    match addr with
    | R.Gep { base = gbase; steps; idx_delta; site = _ } -> (
      match compile_gep_addr c gbase steps idx_delta with
      | Some ga ->
        (* gep→check→store superinstruction. Reference order: the gep
           (address) evaluates and charges first, then the value, then
           check + store. *)
        let cv = compile_expr_i c v in
        let stw = stage_store st bytes in
        if c.instr then
          pu c Profile.op_fused_gep_store_i (fun fr ->
              let w' = ga fr in
              let ob = env.gb in
              let raw = cv fr in
              stw (check_instr st w' ob ~is_store:true ~size:bytes) raw;
              next fr)
        else
          pu c Profile.op_fused_gep_store_i (fun fr ->
              let w' = ga fr in
              let raw = cv fr in
              stw (Int64.logand w' addr_mask) raw;
              next fr)
      | None -> compile_store_int_generic c bytes addr v next)
    | addr -> compile_store_int_generic c bytes addr v next)
  | R.Store { cls; bytes; addr; v } -> (
    match addr with
    | R.Gep { base = gbase; steps; idx_delta; site = _ } -> (
      match compile_gep_addr c gbase steps idx_delta with
      | Some ga ->
        let cv = compile_expr c v in
        let stw = stage_store st bytes in
        let sraw = stage_store_raw st ~instr:c.instr cls in
        if c.instr then
          pu c Profile.op_fused_gep_store (fun fr ->
              let w' = ga fr in
              let ob = env.gb in
              let value = cv fr in
              let ma = check_instr st w' ob ~is_store:true ~size:bytes in
              stw ma (sraw value);
              next fr)
        else
          pu c Profile.op_fused_gep_store (fun fr ->
              let w' = ga fr in
              let value = cv fr in
              stw (Int64.logand w' addr_mask) (sraw value);
              next fr)
      | None -> compile_store_generic c cls bytes addr v next)
    | addr -> compile_store_generic c cls bytes addr v next)
  | R.Store_global { g; cls = R.Cls_int; bytes; e } ->
    let ce = compile_expr_i c e in
    let go = st.globals.(g) in
    let stw = stage_store st bytes in
    (* the global's address is static, so its tag strip stages too *)
    let ga = Int64.logand go.gaddr addr_mask in
    pu c Profile.op_store_global (fun fr ->
        let raw = ce fr in
        stw ga raw;
        next fr)
  | R.Store_global { g; cls; bytes; e } ->
    let ce = compile_expr c e in
    let go = st.globals.(g) in
    let sraw = stage_store_raw st ~instr:c.instr cls in
    pu c Profile.op_store_global (fun fr ->
        let v = ce fr in
        (* reference order ([Vm.exec]): charge first, then demote *)
        charge_store st go.gaddr bytes;
        let raw = sraw v in
        Memory.write_size st.mem go.gaddr ~bytes raw;
        next fr)
  | R.If (cond, t, e) ->
    let cc = compile_cond c cond in
    let ct = compile_seq c t next and ce = compile_seq c e next in
    pu c Profile.op_if (fun fr ->
        base st 2 (* compare + branch *);
        if cc fr then ct fr else ce fr)
  | R.While (cond, body) ->
    let cc = compile_cond c cond in
    let cbody = compile_seq c body nop_u in
    pu c Profile.op_while (fun fr ->
        let rec loop () =
          budget_check st;
          base st 2 (* compare + branch *);
          if cc fr then begin
            (match cbody fr with () -> () | exception Continue_exc -> ());
            loop ()
          end
        in
        (try loop () with Break_exc -> ());
        next fr)
  | R.Return None ->
    pu c Profile.op_return (fun _ -> raise (Return_exc (VI 0L)))
  | R.Return (Some e) ->
    let ce = compile_expr c e in
    pu c Profile.op_return (fun fr -> raise (Return_exc (ce fr)))
  | R.Expr e ->
    let ce = compile_expr c e in
    pu c Profile.op_expr (fun fr ->
        ignore (ce fr);
        next fr)
  | R.Free e ->
    let ce = compile_expr c e in
    pu c Profile.op_free (fun fr ->
        let w, _ = as_ptr (ce fr) in
        let cost = st.allocator.free w in
        charge_alloc_cost st cost;
        next fr)
  | R.Break -> fun _ -> raise Break_exc
  | R.Continue -> fun _ -> raise Continue_exc
  | R.Ifp_register_local { slot; site } ->
    (* inline cache: memoize this site's (tyid → layout pointer)
       resolution; fall back to the per-run table walk on miss. *)
    pu c Profile.op_register_local (fun fr ->
        let addr = fr.local_addr.(slot) in
        if Int64.equal addr local_unset then
          abort ("register of unknown local " ^ fr.rf.local_names.(slot))
        else begin
          let tyid = fr.local_tyid.(slot) in
          let lp =
            if Array.unsafe_get env.ic_tyid site = tyid then
              Array.unsafe_get env.ic_ptr site
            else begin
              let lp = layout_ptr_of st tyid in
              Array.unsafe_set env.ic_tyid site tyid;
              Array.unsafe_set env.ic_ptr site lp;
              lp
            end
          in
          register_local_lp st fr slot lp
        end;
        next fr)
  | R.Ifp_deregister_local slot ->
    pu c Profile.op_deregister_local (fun fr ->
        deregister_local st fr slot;
        next fr)
  | R.Bad_store_global { e; msg } ->
    let ce = compile_expr c e in
    pu c Profile.op_bad (fun fr ->
        ignore (ce fr);
        abort msg)

and compile_seq c stmts (next : ucode) : ucode =
  match stmts with
  | [] -> next
  | s :: rest -> compile_stmt c s (compile_seq c rest next)

(* ---- program -------------------------------------------------------- *)

let compile_func env (f : R.func) : ucode =
  let c = { env; instr = ifp_mode env.st && f.instrumented } in
  compile_seq c f.body nop_u

let program ?profile (st : state) : env =
  let n = Array.length st.rp.funcs in
  let env =
    {
      st;
      prof = profile;
      fbodies = Array.make n nop_u;
      ic_tyid = Array.make (max 1 st.rp.n_sites) (-1);
      ic_ptr = Array.make (max 1 st.rp.n_sites) 0L;
      gb = Bounds.no_bounds;
    }
  in
  Array.iteri (fun i f -> env.fbodies.(i) <- compile_func env f) st.rp.funcs;
  env

(* the compiled entry point for [main] (no call prelude — matching the
   interpreter, which runs main's body directly) *)
let main_code (env : env) : ucode = env.fbodies.(env.st.rp.main)
