(* The closure-compiled engine: same observable behaviour as {!Vm} and
   {!Vm_ref}, different execution strategy. The program is compiled once
   per run — after globals setup, with the full machine state known — by
   {!Compile}, and execution is a single call into main's compiled body.
   Compilation is host-side work and charges nothing, matching the
   interpreter (whose dispatch is equally uncharged). *)

let run ?(config = Rt.default_config) ?profile (raw_prog : Ifp_compiler.Ir.program)
    : Vm.result =
  Rt.run_with ~config raw_prog ~main_body:(fun st frame mainf ->
      ignore mainf;
      let cp = Compile.program ?profile st in
      Compile.main_code cp frame)
