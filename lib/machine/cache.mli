(** Set-associative L1 data-cache model (tag-only, LRU, write-allocate).

    Only hit/miss behaviour is modelled — data always comes from
    {!Memory}. The default geometry matches the CVA6 core used by the
    paper's prototype: 32 KiB, 8-way, 64-byte lines. *)

type access = Load | Store

type t = {
  ways : int;
  sets : int;
  set_mask : int;  (** [sets - 1]; sets is a power of two *)
  line_shift : int;
  tags : int array;  (** [sets * ways], -1 = invalid *)
  lru : int array;  (** [sets * ways]: higher = more recently used *)
  mutable clock : int;
  mutable n_accesses : int;
  mutable n_misses : int;
}
(** The representation is concrete so the closure-compiled VM engine can
    stage the line probe inline at its access sites; geometry fields and
    the array identities are fixed after {!create}, so capturing them at
    staging time is sound. Outside that use, treat [t] as abstract. *)

val create : ?size_bytes:int -> ?ways:int -> ?line_bytes:int -> unit -> t

val access : t -> int64 -> access -> bool
(** [access t addr kind] touches the line containing [addr]; returns
    [true] on a hit. A miss fills the line (evicting LRU). *)

val access_range : t -> int64 -> bytes:int -> access -> int
(** Touch every line overlapped by [\[addr, addr+bytes)]; returns the
    number of misses. An empty range ([bytes <= 0]) touches nothing and
    returns 0. *)

val accesses : t -> int
val misses : t -> int
val reset_stats : t -> unit
val flush : t -> unit
(** Invalidate all lines and reset statistics. *)
