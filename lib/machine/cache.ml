type access = Load | Store

type t = {
  ways : int;
  sets : int;
  set_mask : int; (* sets - 1; sets is a power of two *)
  line_shift : int;
  tags : int array; (* sets * ways, -1 = invalid; lines are < 2^48 so
                       they fit an immediate int and tag compares stay
                       unboxed *)
  lru : int array; (* sets * ways: higher = more recently used *)
  mutable clock : int;
  mutable n_accesses : int;
  mutable n_misses : int;
}

let create ?(size_bytes = 32768) ?(ways = 8) ?(line_bytes = 64) () =
  if not (Ifp_util.Bits.is_pow2 line_bytes) then invalid_arg "Cache.create";
  let lines = size_bytes / line_bytes in
  if lines mod ways <> 0 then invalid_arg "Cache.create";
  let sets = lines / ways in
  if not (Ifp_util.Bits.is_pow2 sets) then invalid_arg "Cache.create";
  {
    ways;
    sets;
    set_mask = sets - 1;
    line_shift = Ifp_util.Bits.log2_exact line_bytes;
    tags = Array.make (sets * ways) (-1);
    lru = Array.make (sets * ways) 0;
    clock = 0;
    n_accesses = 0;
    n_misses = 0;
  }

(* line is < 2^48, so the truncation to int is exact; sets is a power of
   two, so masking equals the modulo the set index needs. *)
let line_of t addr =
  Int64.to_int (Int64.shift_right_logical (Ifp_util.Bits.u48 addr) t.line_shift)

let access_line t line =
  t.n_accesses <- t.n_accesses + 1;
  t.clock <- t.clock + 1;
  let set = line land t.set_mask in
  let base = set * t.ways in
  let rec find i =
    if i >= t.ways then -1
    else if Array.unsafe_get t.tags (base + i) = line then i
    else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    t.lru.(base + i) <- t.clock;
    true
  end
  else begin
    t.n_misses <- t.n_misses + 1;
    (* evict the least recently used way *)
    let victim = ref 0 in
    for i = 1 to t.ways - 1 do
      if t.lru.(base + i) < t.lru.(base + !victim) then victim := i
    done;
    t.tags.(base + !victim) <- line;
    t.lru.(base + !victim) <- t.clock;
    false
  end

let access t addr _kind = access_line t (line_of t addr)

let access_range t addr ~bytes kind =
  ignore kind;
  if bytes <= 0 then 0
  else begin
    let line_bytes = 1 lsl t.line_shift in
    let first = Int64.to_int (Int64.logand addr (Int64.of_int (line_bytes - 1))) in
    let n_lines = (first + bytes + line_bytes - 1) / line_bytes in
    if n_lines = 1 then if access_line t (line_of t addr) then 0 else 1
    else begin
      let misses = ref 0 in
      for i = 0 to n_lines - 1 do
        let a = Int64.add addr (Int64.of_int (i * line_bytes)) in
        if not (access_line t (line_of t a)) then incr misses
      done;
      !misses
    end
  end

let accesses t = t.n_accesses
let misses t = t.n_misses

let reset_stats t =
  t.n_accesses <- 0;
  t.n_misses <- 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  reset_stats t
