let page_size = 4096
let page_shift = 12

type page = { data : Bytes.t; mutable written : bool }

type t = {
  pages : (int, page) Hashtbl.t;
  mapped : (int, unit) Hashtbl.t;
  mutable touched : int;
  (* one-entry lookup cache: most accesses hit the same page repeatedly *)
  mutable last_pno : int;
  mutable last_page : page option;
}

type fault_kind = Unmapped | Misaligned

exception Fault of fault_kind * int64

let create () =
  {
    pages = Hashtbl.create 1024;
    mapped = Hashtbl.create 1024;
    touched = 0;
    last_pno = -1;
    last_page = None;
  }

let pno_of_addr a =
  Int64.to_int (Int64.shift_right_logical (Ifp_util.Bits.u48 a) page_shift)

let map t ~base ~size =
  if size < 0 then invalid_arg "Memory.map";
  let first = pno_of_addr base in
  let last = pno_of_addr (Int64.add base (Int64.of_int (max 0 (size - 1)))) in
  for p = first to last do
    if not (Hashtbl.mem t.mapped p) then Hashtbl.replace t.mapped p ()
  done

let unmap t ~base ~size =
  let open Int64 in
  let b = Ifp_util.Bits.u48 base in
  let e = add b (of_int size) in
  let first_full =
    to_int (shift_right_logical (Ifp_util.Bits.align_up64 b page_size) page_shift)
  in
  let last_full =
    to_int (shift_right_logical (Ifp_util.Bits.align_down64 e page_size) page_shift)
    - 1
  in
  for p = first_full to last_full do
    Hashtbl.remove t.mapped p;
    Hashtbl.remove t.pages p;
    if t.last_pno = p then begin
      t.last_pno <- -1;
      t.last_page <- None
    end
  done

let is_mapped t a = Hashtbl.mem t.mapped (pno_of_addr a)

let get_page t a =
  let pno = pno_of_addr a in
  if t.last_pno = pno then
    match t.last_page with Some p -> p | None -> assert false
  else begin
    if not (Hashtbl.mem t.mapped pno) then raise (Fault (Unmapped, a));
    let page =
      match Hashtbl.find_opt t.pages pno with
      | Some p -> p
      | None ->
        let p = { data = Bytes.make page_size '\000'; written = false } in
        Hashtbl.replace t.pages pno p;
        p
    in
    t.last_pno <- pno;
    t.last_page <- Some page;
    page
  end

let off_of_addr a = Int64.to_int (Int64.logand a 0xFFFL)

let read_u8 t a =
  let p = get_page t a in
  Char.code (Bytes.unsafe_get p.data (off_of_addr a))

let write_u8 t a v =
  let p = get_page t a in
  if not p.written then begin
    p.written <- true;
    t.touched <- t.touched + 1
  end;
  Bytes.unsafe_set p.data (off_of_addr a) (Char.unsafe_chr (v land 0xFF))

let xor_u8 t a mask = write_u8 t a (read_u8 t a lxor (mask land 0xFF))

(* Fast paths when the whole access fits in one page; otherwise byte-wise. *)
let read_u16 t a =
  let off = off_of_addr a in
  if off <= page_size - 2 then
    let p = get_page t a in
    Char.code (Bytes.unsafe_get p.data off)
    lor (Char.code (Bytes.unsafe_get p.data (off + 1)) lsl 8)
  else read_u8 t a lor (read_u8 t (Int64.add a 1L) lsl 8)

let write_u16 t a v =
  write_u8 t a (v land 0xFF);
  write_u8 t (Int64.add a 1L) ((v lsr 8) land 0xFF)

let read_u32 t a =
  let off = off_of_addr a in
  if off <= page_size - 4 then
    let p = get_page t a in
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le p.data off)) 0xFFFFFFFFL
  else
    let lo = read_u16 t a and hi = read_u16 t (Int64.add a 2L) in
    Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 16)

let write_u32 t a v =
  let off = off_of_addr a in
  if off <= page_size - 4 then begin
    let p = get_page t a in
    if not p.written then begin
      p.written <- true;
      t.touched <- t.touched + 1
    end;
    Bytes.set_int32_le p.data off (Int64.to_int32 v)
  end
  else begin
    write_u16 t a (Int64.to_int (Int64.logand v 0xFFFFL));
    write_u16 t (Int64.add a 2L)
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v 16) 0xFFFFL))
  end

let read_u64 t a =
  let off = off_of_addr a in
  if off <= page_size - 8 then
    let p = get_page t a in
    Bytes.get_int64_le p.data off
  else
    let lo = read_u32 t a and hi = read_u32 t (Int64.add a 4L) in
    Int64.logor lo (Int64.shift_left hi 32)

let write_u64 t a v =
  let off = off_of_addr a in
  if off <= page_size - 8 then begin
    let p = get_page t a in
    if not p.written then begin
      p.written <- true;
      t.touched <- t.touched + 1
    end;
    Bytes.set_int64_le p.data off v
  end
  else begin
    write_u32 t a (Int64.logand v 0xFFFFFFFFL);
    write_u32 t (Int64.add a 4L) (Int64.shift_right_logical v 32)
  end

let read_size t a ~bytes =
  match bytes with
  | 1 -> Int64.of_int (read_u8 t a)
  | 2 -> Int64.of_int (read_u16 t a)
  | 4 -> read_u32 t a
  | 8 -> read_u64 t a
  | _ -> invalid_arg "Memory.read_size"

let write_size t a ~bytes v =
  match bytes with
  | 1 -> write_u8 t a (Int64.to_int (Int64.logand v 0xFFL))
  | 2 -> write_u16 t a (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> write_u32 t a v
  | 8 -> write_u64 t a v
  | _ -> invalid_arg "Memory.write_size"

let fill t a ~len c =
  for i = 0 to len - 1 do
    write_u8 t (Int64.add a (Int64.of_int i)) (Char.code c)
  done

let blit_string t a s =
  String.iteri (fun i c -> write_u8 t (Int64.add a (Int64.of_int i)) (Char.code c)) s

let read_string t a ~len =
  String.init len (fun i -> Char.chr (read_u8 t (Int64.add a (Int64.of_int i))))

let touched_pages t = t.touched

let mapped_bytes t = Hashtbl.length t.mapped * page_size
