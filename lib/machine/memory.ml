let page_size = 4096
let page_shift = 12

type page = { data : Bytes.t; mutable written : bool }

(* Direct-mapped page-lookup cache. One entry is not enough: an
   instrumented run interleaves data accesses with metadata-region
   accesses and a single slot thrashes between them. *)
let pcache_slots = 256

let pcache_mask = pcache_slots - 1

(* The mapped set is a handful of large contiguous regions (globals,
   layout table, stack, heap), so it is kept as a sorted list of
   disjoint page-number intervals instead of a per-page table: mapping
   a 256 MiB heap is one cons, not 65536 hashtable inserts. *)
type t = {
  pages : (int, page) Hashtbl.t;
  mutable mapped : (int * int) list; (* inclusive pno intervals, sorted *)
  mutable touched : int;
  pcache_pno : int array; (* -1 = empty *)
  pcache_page : page array;
}

type fault_kind = Unmapped | Misaligned

exception Fault of fault_kind * int64

let dummy_page = { data = Bytes.create 0; written = true }

let create () =
  {
    pages = Hashtbl.create 1024;
    mapped = [];
    touched = 0;
    pcache_pno = Array.make pcache_slots (-1);
    pcache_page = Array.make pcache_slots dummy_page;
  }

let pno_of_addr a =
  Int64.to_int (Int64.shift_right_logical (Ifp_util.Bits.u48 a) page_shift)

(* insert [lo,hi] into a sorted disjoint interval list, merging
   overlapping or adjacent intervals *)
let rec iv_add lo hi = function
  | [] -> [ (lo, hi) ]
  | (l, h) :: rest when h + 1 < lo -> (l, h) :: iv_add lo hi rest
  | (l, h) :: rest when hi + 1 < l -> (lo, hi) :: (l, h) :: rest
  | (l, h) :: rest -> iv_add (min l lo) (max h hi) rest

(* remove [lo,hi], splitting intervals that straddle an endpoint *)
let rec iv_remove lo hi = function
  | [] -> []
  | (l, h) :: rest when h < lo -> (l, h) :: iv_remove lo hi rest
  | (l, h) :: rest when hi < l -> (l, h) :: rest
  | (l, h) :: rest ->
    let tail = if h > hi then (hi + 1, h) :: rest else iv_remove lo hi rest in
    if l < lo then (l, lo - 1) :: tail else tail

let rec iv_mem p = function
  | [] -> false
  | (l, h) :: rest -> if p < l then false else p <= h || iv_mem p rest

let map t ~base ~size =
  if size < 0 then invalid_arg "Memory.map";
  if size > 0 then begin
    let first = pno_of_addr base in
    let last = pno_of_addr (Int64.add base (Int64.of_int (size - 1))) in
    t.mapped <- iv_add first last t.mapped
  end

let unmap t ~base ~size =
  let open Int64 in
  let b = Ifp_util.Bits.u48 base in
  let e = add b (of_int size) in
  let first_full =
    to_int (shift_right_logical (Ifp_util.Bits.align_up64 b page_size) page_shift)
  in
  let last_full =
    to_int (shift_right_logical (Ifp_util.Bits.align_down64 e page_size) page_shift)
    - 1
  in
  if last_full >= first_full then begin
    t.mapped <- iv_remove first_full last_full t.mapped;
    for p = first_full to last_full do
      Hashtbl.remove t.pages p;
      let slot = p land pcache_mask in
      if t.pcache_pno.(slot) = p then begin
        t.pcache_pno.(slot) <- -1;
        t.pcache_page.(slot) <- dummy_page
      end
    done
  end

let is_mapped t a = iv_mem (pno_of_addr a) t.mapped

let get_page t a =
  let pno = pno_of_addr a in
  let slot = pno land pcache_mask in
  if Array.unsafe_get t.pcache_pno slot = pno then
    Array.unsafe_get t.pcache_page slot
  else begin
    if not (iv_mem pno t.mapped) then raise (Fault (Unmapped, a));
    let page =
      match Hashtbl.find_opt t.pages pno with
      | Some p -> p
      | None ->
        let p = { data = Bytes.make page_size '\000'; written = false } in
        Hashtbl.replace t.pages pno p;
        p
    in
    Array.unsafe_set t.pcache_pno slot pno;
    Array.unsafe_set t.pcache_page slot page;
    page
  end

let off_of_addr a = Int64.to_int (Int64.logand a 0xFFFL)

let read_u8 t a =
  let p = get_page t a in
  Char.code (Bytes.unsafe_get p.data (off_of_addr a))

let write_u8 t a v =
  let p = get_page t a in
  if not p.written then begin
    p.written <- true;
    t.touched <- t.touched + 1
  end;
  Bytes.unsafe_set p.data (off_of_addr a) (Char.unsafe_chr (v land 0xFF))

let xor_u8 t a mask = write_u8 t a (read_u8 t a lxor (mask land 0xFF))

(* A page-straddling store must fault before any byte is committed, so
   validate (and materialise) both pages up front. Fault addresses match
   the byte-wise commit order: an unmapped low page faults at [a], an
   unmapped high page at the first byte past the page boundary. *)
let check_straddle t a =
  let off = off_of_addr a in
  ignore (get_page t a);
  ignore (get_page t (Int64.add a (Int64.of_int (page_size - off))))

(* Fast paths when the whole access fits in one page; otherwise byte-wise. *)
let read_u16 t a =
  let off = off_of_addr a in
  if off <= page_size - 2 then
    let p = get_page t a in
    Char.code (Bytes.unsafe_get p.data off)
    lor (Char.code (Bytes.unsafe_get p.data (off + 1)) lsl 8)
  else read_u8 t a lor (read_u8 t (Int64.add a 1L) lsl 8)

let write_u16 t a v =
  let off = off_of_addr a in
  if off <= page_size - 2 then begin
    let p = get_page t a in
    if not p.written then begin
      p.written <- true;
      t.touched <- t.touched + 1
    end;
    Bytes.unsafe_set p.data off (Char.unsafe_chr (v land 0xFF));
    Bytes.unsafe_set p.data (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))
  end
  else begin
    check_straddle t a;
    write_u8 t a (v land 0xFF);
    write_u8 t (Int64.add a 1L) ((v lsr 8) land 0xFF)
  end

let read_u32 t a =
  let off = off_of_addr a in
  if off <= page_size - 4 then
    let p = get_page t a in
    Int64.logand (Int64.of_int32 (Bytes.get_int32_le p.data off)) 0xFFFFFFFFL
  else
    let lo = read_u16 t a and hi = read_u16 t (Int64.add a 2L) in
    Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 16)

let write_u32 t a v =
  let off = off_of_addr a in
  if off <= page_size - 4 then begin
    let p = get_page t a in
    if not p.written then begin
      p.written <- true;
      t.touched <- t.touched + 1
    end;
    Bytes.set_int32_le p.data off (Int64.to_int32 v)
  end
  else begin
    check_straddle t a;
    write_u16 t a (Int64.to_int (Int64.logand v 0xFFFFL));
    write_u16 t (Int64.add a 2L)
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v 16) 0xFFFFL))
  end

let read_u64 t a =
  let off = off_of_addr a in
  if off <= page_size - 8 then
    let p = get_page t a in
    Bytes.get_int64_le p.data off
  else
    let lo = read_u32 t a and hi = read_u32 t (Int64.add a 4L) in
    Int64.logor lo (Int64.shift_left hi 32)

let write_u64 t a v =
  let off = off_of_addr a in
  if off <= page_size - 8 then begin
    let p = get_page t a in
    if not p.written then begin
      p.written <- true;
      t.touched <- t.touched + 1
    end;
    Bytes.set_int64_le p.data off v
  end
  else begin
    check_straddle t a;
    write_u32 t a (Int64.logand v 0xFFFFFFFFL);
    write_u32 t (Int64.add a 4L) (Int64.shift_right_logical v 32)
  end

let read_size t a ~bytes =
  match bytes with
  | 1 -> Int64.of_int (read_u8 t a)
  | 2 -> Int64.of_int (read_u16 t a)
  | 4 -> read_u32 t a
  | 8 -> read_u64 t a
  | _ -> invalid_arg "Memory.read_size"

let write_size t a ~bytes v =
  match bytes with
  | 1 -> write_u8 t a (Int64.to_int (Int64.logand v 0xFFL))
  | 2 -> write_u16 t a (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> write_u32 t a v
  | 8 -> write_u64 t a v
  | _ -> invalid_arg "Memory.write_size"

let fill t a ~len c =
  for i = 0 to len - 1 do
    write_u8 t (Int64.add a (Int64.of_int i)) (Char.code c)
  done

let blit_string t a s =
  String.iteri (fun i c -> write_u8 t (Int64.add a (Int64.of_int i)) (Char.code c)) s

let read_string t a ~len =
  String.init len (fun i -> Char.chr (read_u8 t (Int64.add a (Int64.of_int i))))

let touched_pages t = t.touched

let mapped_bytes t =
  List.fold_left (fun acc (l, h) -> acc + (h - l + 1)) 0 t.mapped * page_size
