(** Sparse simulated physical memory over a 48-bit address space.

    Memory is organised in 4 KiB pages allocated on demand, but only
    within regions explicitly made accessible with {!map}; touching an
    unmapped address raises {!Fault}, which models the page-permission
    traps the hardware prototype relies on (e.g. dereferencing a wild
    pointer).

    All multi-byte accesses are little-endian, matching RV64. Addresses
    are [int64] values whose upper 16 bits are ignored (pointer tags are
    stripped by the caller, see {!Ifp_isa.Tag}). *)

type t

type fault_kind = Unmapped | Misaligned

exception Fault of fault_kind * int64
(** [Fault (kind, addr)] — a memory access trapped at [addr]. *)

val create : unit -> t

val page_size : int
(** 4096. *)

val map : t -> base:int64 -> size:int -> unit
(** Make every page overlapping [\[base, base+size)] accessible,
    zero-filled. Idempotent. A zero-size map is a no-op. *)

val unmap : t -> base:int64 -> size:int -> unit
(** Revoke accessibility (contents are discarded). Only whole pages fully
    inside the range are unmapped. *)

val is_mapped : t -> int64 -> bool

val read_u8 : t -> int64 -> int
val read_u16 : t -> int64 -> int
val read_u32 : t -> int64 -> int64
val read_u64 : t -> int64 -> int64

val write_u8 : t -> int64 -> int -> unit

val xor_u8 : t -> int64 -> int -> unit
(** [xor_u8 m a mask] flips the bits of [mask] in the byte at [a] — the
    fault-injection bit-flip primitive. Faults like any other access. *)


val write_u16 : t -> int64 -> int -> unit
val write_u32 : t -> int64 -> int64 -> unit
val write_u64 : t -> int64 -> int64 -> unit
(** Multi-byte stores are atomic with respect to faults: a store that
    straddles a page boundary validates both pages before committing any
    byte, so a raised {!Fault} leaves memory unchanged. *)

val read_size : t -> int64 -> bytes:int -> int64
(** [read_size m a ~bytes] for [bytes] in {1,2,4,8}. *)

val write_size : t -> int64 -> bytes:int -> int64 -> unit

val fill : t -> int64 -> len:int -> char -> unit
val blit_string : t -> int64 -> string -> unit
val read_string : t -> int64 -> len:int -> string

val touched_pages : t -> int
(** Number of distinct pages ever written — a resident-set proxy. *)

val mapped_bytes : t -> int
(** Total bytes currently mapped. *)
