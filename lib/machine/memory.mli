(** Sparse simulated physical memory over a 48-bit address space.

    Memory is organised in 4 KiB pages allocated on demand, but only
    within regions explicitly made accessible with {!map}; touching an
    unmapped address raises {!Fault}, which models the page-permission
    traps the hardware prototype relies on (e.g. dereferencing a wild
    pointer).

    All multi-byte accesses are little-endian, matching RV64. Addresses
    are [int64] values whose upper 16 bits are ignored (pointer tags are
    stripped by the caller, see {!Ifp_isa.Tag}). *)

type page = { data : Bytes.t; mutable written : bool }
(** One 4 KiB page; [written] flips on the first store and feeds
    {!touched_pages}. *)

type t = {
  pages : (int, page) Hashtbl.t;
  mutable mapped : (int * int) list;
      (** sorted disjoint inclusive page-number intervals *)
  mutable touched : int;
  pcache_pno : int array;  (** direct-mapped lookup cache; -1 = empty *)
  pcache_page : page array;
}
(** The representation is concrete so the closure-compiled VM engine can
    stage page-cache probes inline at its access sites (a hit is then a
    shift, a mask, one array compare and a [Bytes] access — no calls).
    The [pcache_pno]/[pcache_page] arrays are created once and never
    replaced, so capturing them at staging time is sound; {!unmap}
    invalidates their slots in place. Outside that use, treat [t] as
    abstract and go through the accessors below. *)

type fault_kind = Unmapped | Misaligned

exception Fault of fault_kind * int64
(** [Fault (kind, addr)] — a memory access trapped at [addr]. *)

val create : unit -> t

val page_size : int
(** 4096. *)

val page_shift : int
(** [log2 page_size]. *)

val pcache_slots : int
(** Number of entries of the page-lookup cache (a power of two). *)

val map : t -> base:int64 -> size:int -> unit
(** Make every page overlapping [\[base, base+size)] accessible,
    zero-filled. Idempotent. A zero-size map is a no-op. *)

val unmap : t -> base:int64 -> size:int -> unit
(** Revoke accessibility (contents are discarded). Only whole pages fully
    inside the range are unmapped. *)

val is_mapped : t -> int64 -> bool

val read_u8 : t -> int64 -> int
val read_u16 : t -> int64 -> int
val read_u32 : t -> int64 -> int64
val read_u64 : t -> int64 -> int64

val write_u8 : t -> int64 -> int -> unit

val xor_u8 : t -> int64 -> int -> unit
(** [xor_u8 m a mask] flips the bits of [mask] in the byte at [a] — the
    fault-injection bit-flip primitive. Faults like any other access. *)


val write_u16 : t -> int64 -> int -> unit
val write_u32 : t -> int64 -> int64 -> unit
val write_u64 : t -> int64 -> int64 -> unit
(** Multi-byte stores are atomic with respect to faults: a store that
    straddles a page boundary validates both pages before committing any
    byte, so a raised {!Fault} leaves memory unchanged. *)

val read_size : t -> int64 -> bytes:int -> int64
(** [read_size m a ~bytes] for [bytes] in {1,2,4,8}. *)

val write_size : t -> int64 -> bytes:int -> int64 -> unit

val fill : t -> int64 -> len:int -> char -> unit
val blit_string : t -> int64 -> string -> unit
val read_string : t -> int64 -> len:int -> string

val touched_pages : t -> int
(** Number of distinct pages ever written — a resident-set proxy. *)

val mapped_bytes : t -> int
(** Total bytes currently mapped. *)
